"""Hypothesis properties pinning ShardMap (and ring) placement invariants.

The three ISSUE-8 properties: ownership is total and unique at every
epoch (each shard has exactly one owner, always a member), a single
migration moves exactly one shard (and bumps the epoch by exactly one),
and lookups never return a retired owner no matter how membership and
migrations interleave.  ``with_nodes`` -- the membership drivers'
precomputation -- must agree exactly with the incremental ops it
summarises.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.directory import ConsistentHashDirectory, ShardMap

KEYS = [f"k{i}" for i in range(64)]


def assert_ownership_total_and_unique(shard_map):
    owners = shard_map.owners()
    assert len(owners) == shard_map.num_shards
    assert all(owner in shard_map.node_ids for owner in owners)
    assert not set(owners) & shard_map.retired
    for key in KEYS:
        assert shard_map.site(key) == owners[shard_map.shard_of(key)]
        assert shard_map.site(key) in shard_map.node_ids


#: A membership/migration script: each step either toggles a node id in
#: or out of the map, or migrates a shard to a script-chosen member.
steps = st.lists(
    st.tuples(st.sampled_from(["toggle", "assign"]), st.integers(0, 9)),
    max_size=24,
)


@settings(max_examples=60, deadline=None)
@given(
    initial=st.lists(
        st.integers(0, 9), min_size=1, max_size=6, unique=True
    ),
    num_shards=st.integers(1, 48),
    script=steps,
)
def test_ownership_total_and_unique_at_every_epoch(
    initial, num_shards, script
):
    shard_map = ShardMap(initial, num_shards)
    assert_ownership_total_and_unique(shard_map)
    for op, arg in script:
        epoch = shard_map.epoch
        if op == "toggle":
            if arg in shard_map.node_ids:
                if len(shard_map.node_ids) == 1:
                    continue
                shard_map.remove_node(arg)
                assert arg in shard_map.retired
            else:
                shard_map.add_node(arg)
            assert shard_map.epoch == epoch + 1
        else:
            shard = arg % shard_map.num_shards
            dest = shard_map.node_ids[arg % len(shard_map.node_ids)]
            changed = shard_map.assign(shard, dest)
            assert shard_map.owner_of(shard) == dest
            assert shard_map.epoch == epoch + (1 if changed else 0)
        # The invariants hold at *every* epoch, not just the final one.
        assert_ownership_total_and_unique(shard_map)


@settings(max_examples=60, deadline=None)
@given(
    nodes=st.lists(st.integers(0, 9), min_size=2, max_size=6, unique=True),
    num_shards=st.integers(2, 48),
    shard=st.integers(0, 47),
    dest_index=st.integers(0, 5),
)
def test_single_migration_moves_exactly_one_shard(
    nodes, num_shards, shard, dest_index
):
    shard_map = ShardMap(nodes, num_shards)
    shard %= num_shards
    dest = nodes[dest_index % len(nodes)]
    before = shard_map.owners()
    epoch = shard_map.epoch
    changed = shard_map.assign(shard, dest)
    after = shard_map.owners()
    moved = [s for s in range(num_shards) if before[s] != after[s]]
    if before[shard] == dest:
        assert not changed and moved == [] and shard_map.epoch == epoch
    else:
        assert changed and moved == [shard]
        assert after[shard] == dest
        assert shard_map.epoch == epoch + 1


@settings(max_examples=60, deadline=None)
@given(
    initial=st.lists(
        st.integers(0, 9), min_size=3, max_size=6, unique=True
    ),
    num_shards=st.integers(1, 48),
    removals=st.lists(st.integers(0, 5), min_size=1, max_size=4),
)
def test_lookups_never_return_a_retired_owner(initial, num_shards, removals):
    """Across an arbitrary retirement sequence, every epoch's lookups
    land on live members only -- ``remove_node`` reassigns every shard
    before the node leaves the table."""
    shard_map = ShardMap(initial, num_shards)
    for index in removals:
        if len(shard_map.node_ids) == 1:
            break
        victim = shard_map.node_ids[index % len(shard_map.node_ids)]
        shard_map.remove_node(victim)
        assert victim in shard_map.retired
        assert not shard_map.shards_of(victim)
        for key in KEYS:
            assert shard_map.site(key) not in shard_map.retired


@settings(max_examples=40, deadline=None)
@given(
    initial=st.lists(
        st.integers(0, 9), min_size=1, max_size=5, unique=True
    ),
    target=st.lists(
        st.integers(0, 9), min_size=1, max_size=5, unique=True
    ),
    num_shards=st.integers(1, 48),
)
def test_with_nodes_agrees_with_incremental_ops(initial, target, num_shards):
    """The drivers precompute ownership with ``with_nodes`` and later
    flip with ``add_node``/``remove_node``; both paths must place every
    shard identically or the handoff ships keys to the wrong owner."""
    shard_map = ShardMap(initial, num_shards)
    derived = shard_map.with_nodes(target)
    assert sorted(derived.node_ids) == sorted(target)
    incremental = ShardMap(initial, num_shards)
    to_remove = sorted(set(initial) - set(target))
    to_add = sorted(set(target) - set(initial))
    # Disjoint targets admit newcomers first (the map may never empty);
    # otherwise removals precede additions, matching with_nodes exactly.
    ops = (
        [("add", n) for n in to_add] + [("remove", n) for n in to_remove]
        if len(to_remove) == len(initial)
        else [("remove", n) for n in to_remove] + [("add", n) for n in to_add]
    )
    for op, node_id in ops:
        if op == "add":
            incremental.add_node(node_id)
        else:
            incremental.remove_node(node_id)
    assert derived.owners() == incremental.owners()
    # The original is untouched (the live map only flips at cutover).
    assert sorted(shard_map.node_ids) == sorted(initial)


@settings(max_examples=40, deadline=None)
@given(
    nodes=st.lists(st.integers(0, 9), min_size=2, max_size=6, unique=True),
    removal_index=st.integers(0, 5),
)
def test_ring_lookups_never_return_a_removed_node(nodes, removal_index):
    """The consistent-hash ring satisfies the same liveness property:
    after ``remove_node`` no key resolves to the departed member."""
    ring = ConsistentHashDirectory(nodes, virtual_nodes=16)
    victim = nodes[removal_index % len(nodes)]
    ring.remove_node(victim)
    for key in KEYS:
        assert ring.site(key) != victim
        assert ring.site(key) in ring.node_ids


def test_shardmap_validates_arguments():
    with pytest.raises(ValueError):
        ShardMap([])
    with pytest.raises(ValueError):
        ShardMap([0, 1], num_shards=0)
    with pytest.raises(ValueError):
        ShardMap([0, 0])
    shard_map = ShardMap([0, 1], num_shards=4)
    with pytest.raises(ValueError):
        shard_map.assign(4, 0)
    with pytest.raises(ValueError):
        shard_map.assign(0, 7)  # not a member
    with pytest.raises(ValueError):
        shard_map.add_node(1)
    with pytest.raises(ValueError):
        shard_map.remove_node(5)
    shard_map.remove_node(1)
    with pytest.raises(ValueError):
        shard_map.remove_node(0)  # cannot empty the map


def test_shardmap_initial_placement_is_strided_and_balanced():
    shard_map = ShardMap([3, 1, 2], num_shards=7)
    assert shard_map.owners() == (3, 1, 2, 3, 1, 2, 3)
    from collections import Counter

    counts = Counter(shard_map.owners())
    assert max(counts.values()) - min(counts.values()) <= 1
