"""Per-shard primary-backup replication: substrate tests on the Cluster API.

These are the old standalone ``ReplicaGroup`` scenarios -- replicate to
every backup, apply in submission order, failover preserves committed
writes, double failover, single-copy groups, backup-targeted clients --
ported to the integrated substrate (``repro.replication.shard`` driven
through :class:`repro.system.Cluster`).

Clusters with a heartbeat interval configured never quiesce, so every
scenario drives the simulation with ``cluster.run(until=...)`` on a
stepped clock rather than running to exhaustion.
"""

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    DurabilityConfig,
    NetworkConfig,
    ReplicationConfig,
    RpcConfig,
    ShardingConfig,
)
from repro.config import HealingConfig
from repro.replication import backups_for_shard

NUM_KEYS = 12
NUM_SHARDS = 12
SETTLE = 1e-3

pytestmark = pytest.mark.replication


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def build(
    num_nodes=3,
    *,
    factor=2,
    mode="sync",
    read_from_backups=False,
    failover=None,
    seed=7,
):
    """A sharded FW-KV cluster with per-shard replication enabled."""
    config = ClusterConfig(
        num_nodes=num_nodes,
        seed=seed,
        prepared_lease=5e-3,
        gc_enabled=False,
        network=NetworkConfig(
            jitter=5e-6,
            rpc=RpcConfig(request_timeout=1.5e-3, max_attempts=3),
        ),
        sharding=ShardingConfig(enabled=True, num_shards=NUM_SHARDS),
        replication=ReplicationConfig(
            enabled=True,
            replication_factor=factor,
            mode=mode,
            read_from_backups=read_from_backups,
            failover_timeout=failover,
        ),
        durability=DurabilityConfig(wal_enabled=False, termination_query=True),
        healing=HealingConfig(
            heartbeat_interval=1e-3 if failover is not None else None
        ),
    )
    cluster = Cluster("fwkv", config)
    for i in range(NUM_KEYS):
        cluster.load(f"k{i}", 0)
    return cluster


def run_plan(cluster, plan, *, read_only=False, settle=SETTLE):
    """Run serialized ``(coordinator, keys)`` txns; return (ok, values)."""
    outcomes = []

    def driver():
        for coordinator, keys in plan:
            node = cluster.node(coordinator)
            txn = node.begin(is_read_only=read_only)
            values = []
            for key in keys:
                values.append((yield from node.read(txn, key)))
            if not read_only:
                for key, value in zip(keys, values):
                    node.write(txn, key, value + 1)
            ok = yield from node.commit(txn)
            outcomes.append((ok, values))
            yield cluster.sim.timeout(settle)

    cluster.spawn(driver(), name="plan")
    cluster.run(until=cluster.sim.now + len(plan) * (settle + 2e-3) + 5e-3)
    assert len(outcomes) == len(plan), "plan driver did not finish in time"
    return outcomes


def all_keys():
    return [f"k{i}" for i in range(NUM_KEYS)]


def bump_all(cluster, coordinators=(0, 1, 2)):
    """One read-modify-write increment per key; all must commit."""
    plan = [
        (coordinators[i % len(coordinators)], [f"k{i}"])
        for i in range(NUM_KEYS)
    ]
    outcomes = run_plan(cluster, plan)
    assert all(ok for ok, _ in outcomes)


def chain_tuples(node, key):
    """One key's full version chain, bit-comparable across nodes."""
    if key not in node.store:
        return ()
    return tuple(
        (v.vid, v.origin, v.seq, v.value, v.vc.to_tuple())
        for v in node.store.chain(key)
    )


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
def test_placement_is_deterministic_and_avoids_the_owner():
    first = build()
    second = build()
    assert first.replication.placement == second.replication.placement
    for shard, backups in first.replication.placement.items():
        assert len(backups) == 1  # replication_factor - 1
        assert first.directory.owner_of(shard) not in backups


def test_placement_spreads_backups_across_nodes():
    cluster = build(num_nodes=4, factor=3)
    counts = {}
    for backups in cluster.replication.placement.values():
        assert len(backups) == 2
        for backup in backups:
            counts[backup] = counts.get(backup, 0) + 1
    # The rotation spreads backup shards over every node.
    assert set(counts) == set(range(4))


def test_backups_for_shard_excludes_down_nodes():
    cluster = build(num_nodes=4, factor=3)
    shard_map = cluster.directory
    shard = 0
    full = backups_for_shard(shard_map, shard, 3)
    downed = backups_for_shard(shard_map, shard, 3, down={full[0]})
    assert full[0] not in downed
    assert len(downed) == 2


# ----------------------------------------------------------------------
# Ported ReplicaGroup scenarios
# ----------------------------------------------------------------------
def test_commit_replicates_to_all_backups():
    """Old ``test_submit_replicates_to_all_backups``: after a sync-mode
    commit drains, every backup's chain is bit-verbatim the primary's."""
    cluster = build()
    bump_all(cluster)
    cluster.run(until=cluster.sim.now + 5e-3)
    for key in all_keys():
        primary = cluster.node(cluster.directory.site(key))
        reference = chain_tuples(primary, key)
        assert len(reference) == 2  # loaded baseline + one commit
        for backup_id in cluster.replication.backups_for_key(key):
            assert chain_tuples(cluster.node(backup_id), key) == reference
    assert cluster.metrics.replication_records_streamed > 0
    assert cluster.metrics.replication_sync_degraded == 0


def test_stream_applies_in_submission_order():
    """Old ``test_commands_apply_in_submission_order``: repeated writes
    to one key reach backups in commit order, vids dense and ascending."""
    cluster = build()
    key = "k0"
    plan = [(i % 3, [key]) for i in range(10)]
    outcomes = run_plan(cluster, plan)
    assert [ok for ok, _ in outcomes] == [True] * 10
    cluster.run(until=cluster.sim.now + 5e-3)
    primary = cluster.node(cluster.directory.site(key))
    reference = chain_tuples(primary, key)
    assert [v[0] for v in reference] == list(range(11))  # dense vids
    assert reference[-1][3] == 10  # last value
    for backup_id in cluster.replication.backups_for_key(key):
        assert chain_tuples(cluster.node(backup_id), key) == reference


def test_failover_preserves_committed_writes():
    """Old ``test_failover_preserves_committed_writes``: crash a primary
    after acked commits; the promoted backups serve every one of them."""
    cluster = build(failover=4e-3)
    bump_all(cluster)
    victim = 1
    owned = list(cluster.directory.shards_of(victim))
    assert owned, "victim must own shards for the scenario to bite"

    cluster.network.crash(victim)
    cluster.run(until=cluster.sim.now + 0.1)
    assert cluster.metrics.failovers_completed >= len(owned)
    assert not cluster.directory.shards_of(victim)

    reads = run_plan(
        cluster, [(0, [k]) for k in all_keys()], read_only=True
    )
    assert all(ok and values == [1] for ok, values in reads)

    # And the cluster still accepts writes everywhere ("after failover").
    writes = run_plan(cluster, [(2, [k]) for k in all_keys()])
    assert all(ok for ok, _ in writes)


def test_double_failover():
    """Old ``test_double_failover``: two successive primary crashes with
    replication_factor=3; committed writes survive both."""
    cluster = build(num_nodes=4, factor=3, failover=4e-3)
    bump_all(cluster, coordinators=(0, 1, 2, 3))

    for victim in (1, 2):
        cluster.network.crash(victim)
        cluster.run(until=cluster.sim.now + 0.1)
        assert not cluster.directory.shards_of(victim)

    reads = run_plan(
        cluster, [(0, [k]) for k in all_keys()], read_only=True
    )
    assert all(ok and values == [1] for ok, values in reads)
    writes = run_plan(cluster, [(3, [k]) for k in all_keys()])
    assert all(ok for ok, _ in writes)


def test_replication_factor_one_runs_standalone():
    """Old ``test_single_replica_group_commits_immediately``: a single
    copy of every shard commits without any stream traffic."""
    cluster = build(factor=1)
    bump_all(cluster)
    assert cluster.metrics.replication_records_streamed == 0
    assert cluster.replication.placement == {
        shard: () for shard in range(NUM_SHARDS)
    }


def test_backup_serves_read_only_snapshots():
    """Old ``test_backup_redirects_clients``: a read landing on a backup
    is served there (when the frontier allows) or forwarded -- never
    wrong, and the backup path demonstrably carries traffic."""
    cluster = build(read_from_backups=True)
    bump_all(cluster)
    reads = run_plan(
        cluster,
        [((i + 1) % 3, [f"k{i % NUM_KEYS}"]) for i in range(2 * NUM_KEYS)],
        read_only=True,
    )
    assert all(ok and values == [1] for ok, values in reads)
    metrics = cluster.metrics
    assert metrics.backup_reads_served > 0
    # Served + forwarded both keep the PSI answer identical; non-RO
    # traffic never routes to backups at all.
    assert metrics.backup_reads_forwarded >= 0


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_replication_config_validates():
    with pytest.raises(ValueError):
        ReplicationConfig(replication_factor=0)
    with pytest.raises(ValueError):
        ReplicationConfig(mode="quorum")
    with pytest.raises(ValueError):
        ReplicationConfig(failover_timeout=0.0)


def test_replication_requires_sharding():
    config = ClusterConfig(
        num_nodes=2,
        replication=ReplicationConfig(enabled=True),
    )
    with pytest.raises(ValueError):
        Cluster("fwkv", config)
