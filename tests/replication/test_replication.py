"""Tests for the site-availability substrate (primary-backup replication)."""

import pytest

from repro.replication import KVStateMachine, ReplicaGroup, ReplicaRole
from repro.sim import Simulator


def build(num_replicas=3, **kwargs):
    sim = Simulator()
    group = ReplicaGroup(sim, num_replicas=num_replicas, **kwargs)
    return sim, group


def drive(sim, group, gen):
    proc = sim.spawn(gen)
    while not proc.triggered:
        if not sim.step():
            raise AssertionError("simulation drained before process finished")
    return proc.value


def test_initial_primary_is_lowest_id():
    sim, group = build()
    assert group.replicas[0].role is ReplicaRole.PRIMARY
    assert group.replicas[1].role is ReplicaRole.BACKUP
    group.shutdown()


def test_submit_replicates_to_all_backups():
    sim, group = build()

    def client():
        result = yield from group.submit(("put", "x", 1))
        return result

    assert drive(sim, group, client()) == 1
    sim.run(until=sim.now + 5e-3)
    for replica in group.replicas:
        assert replica.commit_index == 1
        assert replica.sm.get("x") == 1
    group.shutdown()


def test_commands_apply_in_submission_order():
    sim, group = build()

    def client():
        for i in range(10):
            yield from group.submit(("put", "counter", i))
        final = yield from group.submit(("get", "counter"))
        return final

    assert drive(sim, group, client()) == 9
    sim.run(until=sim.now + 5e-3)
    snapshots = [r.sm.snapshot() for r in group.replicas]
    assert all(snapshot == snapshots[0] for snapshot in snapshots)
    group.shutdown()


def test_failover_preserves_committed_writes():
    sim, group = build()
    log = {}

    def phase1():
        for i in range(5):
            yield from group.submit(("put", f"k{i}", i))
        log["committed"] = 5

    drive(sim, group, phase1())

    crashed = group.crash_primary()
    assert crashed.replica_id == 0

    # Let heartbeat timeouts fire and a successor take over.
    sim.run(until=sim.now + 30e-3)
    new_primary = group.primary()
    assert new_primary is not None
    assert new_primary.replica_id == 1
    assert new_primary.epoch > 0
    for i in range(5):
        assert new_primary.sm.get(f"k{i}") == i, "committed write lost"

    def phase2():
        result = yield from group.submit(("put", "after", "failover"))
        return result

    assert drive(sim, group, phase2()) == "failover"
    sim.run(until=sim.now + 5e-3)
    for replica in group.live_replicas():
        assert replica.sm.get("after") == "failover"
    group.shutdown()


def test_double_failover():
    sim, group = build(num_replicas=4)

    def write(key, value):
        def gen():
            result = yield from group.submit(("put", key, value))
            return result
        return gen()

    drive(sim, group, write("a", 1))
    group.crash_primary()
    sim.run(until=sim.now + 30e-3)
    drive(sim, group, write("b", 2))
    group.crash_primary()
    sim.run(until=sim.now + 30e-3)
    survivor = group.primary()
    assert survivor is not None
    assert survivor.replica_id == 2
    assert survivor.sm.get("a") == 1
    assert survivor.sm.get("b") == 2
    group.shutdown()


def test_single_replica_group_commits_immediately():
    sim, group = build(num_replicas=1)

    def client():
        result = yield from group.submit(("put", "solo", 42))
        return result

    assert drive(sim, group, client()) == 42
    group.shutdown()


def test_backup_redirects_clients():
    sim, group = build()
    # Point the client stub at a backup; the redirect must land at the
    # primary anyway.
    group._believed_primary = 2

    def client():
        result = yield from group.submit(("put", "x", "routed"))
        return result

    assert drive(sim, group, client()) == "routed"
    assert group._believed_primary == 0
    group.shutdown()


def test_state_machine_rejects_unknown_commands():
    machine = KVStateMachine()
    with pytest.raises(ValueError):
        machine.apply(("increment", "x"))


def test_group_validates_size():
    sim = Simulator()
    with pytest.raises(ValueError):
        ReplicaGroup(sim, num_replicas=0)
