"""The local-commit fast path: all-local writesets skip the Prepare RPC."""

from repro.net.message import MessageType
from tests.integration.scenario_tools import make_cluster, update_txn


def message_count(cluster, msg_type):
    return cluster.network.stats.messages_by_type.get(msg_type, 0)


def test_local_commit_sends_no_prepare_messages():
    cluster = make_cluster("walter", 2, {"local": 0}, initial={"local": 0})
    ok, _ = cluster.run_process(update_txn(cluster, 0, writes={"local": 1}))
    assert ok
    assert message_count(cluster, MessageType.PREPARE) == 0
    assert message_count(cluster, MessageType.VOTE) == 0
    # The ordered Decide/Propagate machinery still runs.
    assert message_count(cluster, MessageType.DECIDE) == 1
    assert message_count(cluster, MessageType.PROPAGATE) == 1
    assert cluster.node(0).store.chain("local").latest.value == 1
    assert cluster.site_clocks() == [(1, 0), (1, 0)]


def test_remote_writeset_still_uses_rpc_prepare():
    cluster = make_cluster("fwkv", 2, {"remote": 1}, initial={"remote": 0})
    ok, _ = cluster.run_process(update_txn(cluster, 0, writes={"remote": 1}))
    assert ok
    assert message_count(cluster, MessageType.PREPARE) == 1


def test_mixed_writeset_uses_rpc_for_all_participants():
    cluster = make_cluster(
        "fwkv", 2, {"here": 0, "there": 1}, initial={"here": 0, "there": 0}
    )
    ok, _ = cluster.run_process(
        update_txn(cluster, 0, writes={"here": 1, "there": 2})
    )
    assert ok
    assert message_count(cluster, MessageType.PREPARE) == 2


def test_fast_path_still_validates_conflicts():
    """Two local read-modify-writes racing on one key: one aborts."""
    cluster = make_cluster("fwkv", 1, {"k": 0}, initial={"k": 0})
    outcomes = []

    def rmw():
        node = cluster.node(0)
        txn = node.begin(is_read_only=False)
        value = yield from node.read(txn, "k")
        yield cluster.sim.timeout(50e-6)  # overlap the two transactions
        node.write(txn, "k", value + 1)
        ok = yield from node.commit(txn)
        outcomes.append(ok)

    cluster.spawn(rmw())
    cluster.spawn(rmw())
    cluster.run()
    assert sorted(outcomes) == [False, True]
    assert cluster.node(0).store.chain("k").latest.value == 1
    assert not cluster.any_locks_held()


def test_local_commits_are_faster_than_remote():
    def commit_latency(placement_node):
        cluster = make_cluster(
            "walter", 2, {"key": placement_node}, initial={"key": 0}
        )

        def proc():
            node = cluster.node(0)
            txn = node.begin(is_read_only=False)
            node.write(txn, "key", 1)
            started = cluster.sim.now
            ok = yield from node.commit(txn)
            assert ok
            return cluster.sim.now - started

        return cluster.run_process(proc())

    assert commit_latency(placement_node=0) < commit_latency(placement_node=1)
