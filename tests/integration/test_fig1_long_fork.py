"""Figure 1: the observable long-fork anomaly -- admitted by Walter,
eliminated by FW-KV when the updates commit before the readers start.

Four nodes.  ``x`` is preferred at node 1, ``y`` at node 2.  T2 (node 1)
and T3 (node 2) are non-conflicting local updates that both commit around
t=0.  Asymmetric congestion delays T2's Propagate towards node 3 and T3's
Propagate towards node 0 by 10 ms.  At t=1 ms -- after both commits, before
the delayed Propagates -- read-only T1 (node 0) reads x then y, and
read-only T4 (node 3) reads y then x.

* Walter: T1's begin snapshot includes T2 but not T3; T4's includes T3 but
  not T2.  They observe the two updates in opposite orders: a long fork
  that is *observable* (both updates finished before both readers began).
* FW-KV: each read is a first contact with its node, so T1 and T4 both
  see x1 and y1.  No fork.
"""

from repro.metrics import check_no_read_skew, find_long_forks
from repro.net.message import MessageType
from tests.integration.scenario_tools import make_cluster, read_only_txn, update_txn

PLACEMENT = {"x": 1, "y": 2}
INITIAL = {"x": "x0", "y": "y0"}
SLOW = 10e-3


def _delay_policy(envelope):
    if envelope.msg_type != MessageType.PROPAGATE:
        return 0.0
    if (envelope.src, envelope.dst) in {(1, 3), (2, 0)}:
        return SLOW
    return 0.0


def run_scenario(protocol):
    cluster = make_cluster(protocol, 4, PLACEMENT, initial=INITIAL)
    cluster.network.delay_policy = _delay_policy
    result = {}

    def writer(node_id, key, value, label):
        ok, _ = yield from update_txn(cluster, node_id, writes={key: value})
        result[label] = ok

    def reader(node_id, keys, label):
        observed = yield from read_only_txn(cluster, node_id, keys, delay=1e-3)
        result[label] = observed

    cluster.spawn(writer(1, "x", "x1", "t2_ok"))
    cluster.spawn(writer(2, "y", "y1", "t3_ok"))
    cluster.spawn(reader(0, ["x", "y"], "t1"))
    cluster.spawn(reader(3, ["y", "x"], "t4"))
    cluster.run()
    assert result["t2_ok"] and result["t3_ok"]
    return cluster, result


def test_walter_admits_observable_long_fork():
    cluster, result = run_scenario("walter")
    assert result["t1"] == {"x": "x1", "y": "y0"}, "T1 sees T2 but not T3"
    assert result["t4"] == {"y": "y1", "x": "x0"}, "T4 sees T3 but not T2"

    forks = find_long_forks(cluster.finalized_history())
    assert forks, "the two readers disagree on the update order"
    assert any(fork.observable for fork in forks), (
        "both updates committed before both readers started: the "
        "client-observable anomaly"
    )


def test_fwkv_eliminates_observable_long_fork():
    cluster, result = run_scenario("fwkv")
    assert result["t1"] == {"x": "x1", "y": "y1"}, "fresh first contacts"
    assert result["t4"] == {"y": "y1", "x": "x1"}

    forks = find_long_forks(cluster.finalized_history())
    assert not forks


def test_histories_remain_free_of_read_skew():
    for protocol in ("walter", "fwkv"):
        cluster, _result = run_scenario(protocol)
        assert check_no_read_skew(cluster.finalized_history())


def test_walter_snapshots_converge_after_propagation():
    """The fork is transient: once Propagates arrive, new readers agree."""
    cluster, _result = run_scenario("walter")

    def late_reader(node_id, label, out):
        observed = yield from read_only_txn(cluster, node_id, ["x", "y"])
        out[label] = observed

    out = {}
    cluster.spawn(late_reader(0, "n0", out))
    cluster.spawn(late_reader(3, "n3", out))
    cluster.run()
    assert out["n0"] == out["n3"] == {"x": "x1", "y": "y1"}
