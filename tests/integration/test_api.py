"""Public API surface suite: exports, config serde, transaction facade.

Pins the package's public contract: every public ``*Config`` dataclass
is importable from ``repro`` (the regression that motivated this suite
was ``BatchingConfig`` living in ``repro.config`` but missing from the
package exports), every config round-trips through ``to_dict()`` /
``from_dict()`` -- including through JSON -- and the
:meth:`~repro.system.Cluster.run_txn` facade behaves exactly as the
README quickstart promises.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
import repro.config
from repro import (
    BatchingConfig,
    CheckpointConfig,
    Cluster,
    ClusterConfig,
    CostModel,
    DurabilityConfig,
    HealingConfig,
    NetworkConfig,
    ReplicationConfig,
    RpcConfig,
    ShardingConfig,
    SnapshotTransferConfig,
    TransportConfig,
    TxnHandle,
    TxnResult,
)
from repro.config import ConfigSerde

pytestmark = pytest.mark.api


# ----------------------------------------------------------------------
# Export surface
# ----------------------------------------------------------------------
def public_config_classes():
    """Every public config dataclass defined in repro.config."""
    return {
        name: obj
        for name, obj in vars(repro.config).items()
        if isinstance(obj, type)
        and issubclass(obj, ConfigSerde)
        and obj is not ConfigSerde
        and not name.startswith("_")
    }


def test_every_public_config_class_is_exported():
    classes = public_config_classes()
    assert len(classes) >= 10  # the known surface; growing is fine
    for name, obj in classes.items():
        assert name in repro.__all__, f"{name} missing from repro.__all__"
        assert getattr(repro, name) is obj, f"repro.{name} is a stray alias"


def test_batching_config_importable_from_package():
    # The original export gap, kept as an explicit regression test.
    from repro import BatchingConfig as imported

    assert imported is repro.config.BatchingConfig


def test_facade_types_are_exported():
    assert repro.TxnHandle is TxnHandle
    assert repro.TxnResult is TxnResult
    assert "TxnHandle" in repro.__all__ and "TxnResult" in repro.__all__


def test_transport_seam_is_part_of_the_public_surface():
    # The transport redesign's contract: the abstract seam types are
    # importable from repro.net, and the selecting config from repro.
    from repro.net import Endpoint, Network, RpcEndpoint, Transport

    assert issubclass(Network, Transport)
    assert issubclass(RpcEndpoint, Endpoint)
    assert repro.TransportConfig is TransportConfig
    assert "TransportConfig" in repro.__all__
    assert TransportConfig in public_config_classes().values()


def test_transport_config_defaults_to_sim_and_validates_kind():
    cfg = TransportConfig()
    assert cfg.kind == "sim"
    assert ClusterConfig(num_nodes=3).transport == cfg
    with pytest.raises(ValueError):
        TransportConfig(kind="carrier-pigeon")
    overlay = ClusterConfig.from_dict(
        {"num_nodes": 3, "transport": {"kind": "socket", "time_scale": 2.0}}
    )
    assert overlay.transport.kind == "socket"
    assert overlay.transport.time_scale == 2.0
    assert overlay.transport.host == TransportConfig().host  # defaults kept


def test_cli_config_includes_the_transport_block(capsys):
    from repro.cli import main

    assert main(["config", "--nodes", "3"]) == 0
    printed = json.loads(capsys.readouterr().out)
    assert printed["transport"]["kind"] == "sim"
    assert ClusterConfig.from_dict(printed).transport == TransportConfig()


def test_group_commit_and_adaptive_batching_fields_default_off():
    # The perf knobs added with group commit / adaptive batching must stay
    # inert by default: fsync cost zero (unbuffered WAL, historical
    # behaviour) and fixed-window batching.
    durability = DurabilityConfig()
    assert durability.fsync_latency == 0.0
    assert durability.group_commit_window == 0.0
    assert durability.group_commit_max_records > 0
    batching = BatchingConfig()
    assert batching.adaptive is False
    assert batching.max_window > 0
    assert batching.adaptive_step > 0
    assert 0 < batching.adaptive_decay < 1
    round_tripped = DurabilityConfig.from_dict(
        {"fsync_latency": 1e-4, "group_commit_window": 2e-4}
    )
    assert round_tripped.fsync_latency == 1e-4
    assert round_tripped.group_commit_window == 2e-4


def test_replication_defaults_off_and_overlays():
    # Replication must stay inert by default: one copy of every shard,
    # no streams, no failover driver.
    replication = ReplicationConfig()
    assert replication.enabled is False
    assert replication.read_from_backups is False
    assert replication.failover_timeout is None
    assert replication.replication_factor >= 2
    assert replication.mode == "sync"
    cfg = ClusterConfig.from_dict(
        {
            "num_nodes": 3,
            "sharding": {"enabled": True},
            "replication": {
                "enabled": True,
                "replication_factor": 3,
                "mode": "async",
                "failover_timeout": 4e-3,
            },
        }
    )
    assert cfg.replication.enabled and cfg.replication.replication_factor == 3
    assert cfg.replication.mode == "async"
    assert cfg.replication.failover_timeout == 4e-3
    assert cfg.replication.sync_timeout == ReplicationConfig().sync_timeout


def test_sharding_defaults_off_and_overlays():
    # Sharding must stay inert by default: clusters keep the consistent
    # hash ring unless opted in, and the rebalance loop stays dormant.
    sharding = ShardingConfig()
    assert sharding.enabled is False
    assert sharding.rebalance_interval is None
    assert sharding.num_shards > 0
    assert sharding.imbalance_threshold >= 1.0
    cfg = ClusterConfig.from_dict(
        {"num_nodes": 3, "sharding": {"enabled": True, "num_shards": 32}}
    )
    assert cfg.sharding.enabled and cfg.sharding.num_shards == 32
    assert cfg.sharding.track_load is True  # defaults kept for the rest


# ----------------------------------------------------------------------
# Config serde round-trip
# ----------------------------------------------------------------------
def optional(strategy):
    return st.none() | strategy

small_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
positive_floats = st.floats(
    min_value=1e-6, max_value=1.0, allow_nan=False
)

rpc_configs = st.builds(
    RpcConfig,
    request_timeout=optional(positive_floats),
    max_attempts=st.integers(1, 6),
    backoff_base=positive_floats,
    backoff_jitter=small_floats,
)
network_configs = st.builds(
    NetworkConfig,
    base_latency=positive_floats,
    jitter=small_floats,
    message_delays=st.dictionaries(
        st.sampled_from(["Propagate", "Decide", "Prepare"]),
        small_floats,
        max_size=2,
    ),
    loss_rate=small_floats,
    rpc=rpc_configs,
)
checkpoint_configs = st.builds(
    CheckpointConfig,
    interval=optional(positive_floats),
    min_records=st.integers(1, 64),
    truncate=st.booleans(),
    max_peer_lag=optional(st.integers(0, 16)),
)
snapshot_configs = st.builds(
    SnapshotTransferConfig,
    enabled=st.booleans(),
    chunk_records=st.integers(1, 128),
    offer_threshold=st.integers(0, 4),
    lag_bias=small_floats,
)
replication_configs = st.builds(
    ReplicationConfig,
    enabled=st.booleans(),
    replication_factor=st.integers(1, 5),
    mode=st.sampled_from(["sync", "async"]),
    read_from_backups=st.booleans(),
    failover_timeout=optional(positive_floats),
    sync_timeout=positive_floats,
    batch_records=st.integers(1, 64),
    retry_interval=positive_floats,
)
sharding_configs = st.builds(
    ShardingConfig,
    enabled=st.booleans(),
    num_shards=st.integers(1, 256),
    track_load=st.booleans(),
    rebalance_interval=optional(positive_floats),
    imbalance_threshold=st.floats(
        min_value=1.0, max_value=4.0, allow_nan=False
    ),
    min_samples=st.integers(1, 256),
    max_moves_per_round=st.integers(1, 8),
    load_decay=small_floats,
)
transport_configs = st.builds(
    TransportConfig,
    kind=st.sampled_from(["sim", "socket"]),
    host=st.sampled_from(["127.0.0.1", "localhost"]),
    base_port=st.integers(0, 65535),
    time_scale=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    connect_timeout=positive_floats,
    max_connect_attempts=st.integers(1, 16),
    reconnect_backoff_scale=st.floats(
        min_value=1.0, max_value=1000.0, allow_nan=False
    ),
    idle_timeout=positive_floats,
    drain_grace=positive_floats,
    spin_threshold=small_floats,
)
healing_configs = st.builds(
    HealingConfig,
    detector_enabled=st.booleans(),
    heartbeat_interval=optional(positive_floats),
    anti_entropy_interval=optional(positive_floats),
    max_stream_per_round=st.integers(1, 128),
    checkpoint=checkpoint_configs,
    snapshot=snapshot_configs,
)
cluster_configs = st.builds(
    ClusterConfig,
    num_nodes=st.integers(1, 8),
    clients_per_node=st.integers(0, 8),
    seed=st.integers(0, 2**32 - 1),
    gc_enabled=st.booleans(),
    prepared_lease=optional(positive_floats),
    batching=st.builds(
        BatchingConfig,
        propagate_window=small_floats,
        remove_flush_interval=optional(positive_floats),
        adaptive=st.booleans(),
        max_window=small_floats,
        adaptive_step=small_floats,
        adaptive_decay=small_floats,
    ),
    durability=st.builds(
        DurabilityConfig,
        wal_enabled=st.booleans(),
        termination_query=st.booleans(),
        fsync_latency=small_floats,
        group_commit_window=small_floats,
        group_commit_max_records=st.integers(1, 256),
    ),
    healing=healing_configs,
    sharding=sharding_configs,
    replication=replication_configs,
    network=network_configs,
    transport=transport_configs,
    costs=st.builds(
        CostModel,
        read_handler=small_floats,
        cpu_cores=optional(st.integers(1, 32)),
    ),
)


@given(cluster_configs)
@settings(max_examples=60, deadline=None)
def test_cluster_config_round_trips_through_dict_and_json(cfg):
    assert ClusterConfig.from_dict(cfg.to_dict()) == cfg
    assert ClusterConfig.from_dict(json.loads(json.dumps(cfg.to_dict()))) == cfg


def test_every_config_class_round_trips_at_defaults():
    for name, cls in public_config_classes().items():
        required = [
            f
            for f in dataclasses.fields(cls)
            if f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
        ]
        cfg = cls(3) if required else cls()  # num_nodes for ClusterConfig
        assert cls.from_dict(cfg.to_dict()) == cfg, name


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown keys"):
        ClusterConfig.from_dict({"num_nodes": 3, "num_shards": 7})


def test_from_dict_accepts_partial_overlay():
    cfg = ClusterConfig.from_dict(
        {"num_nodes": 3, "healing": {"anti_entropy_interval": 5e-4}}
    )
    assert cfg.num_nodes == 3
    assert cfg.healing.anti_entropy_interval == 5e-4
    assert cfg.healing.checkpoint == CheckpointConfig()  # defaults kept
    assert cfg.network == NetworkConfig()


# ----------------------------------------------------------------------
# Transaction facade
# ----------------------------------------------------------------------
def fresh_cluster(protocol="fwkv"):
    cluster = Cluster(protocol, ClusterConfig(num_nodes=4, seed=3))
    cluster.load("account:alice", 100)
    cluster.load("account:bob", 0)
    return cluster


def test_run_txn_executes_the_quickstart_transfer():
    cluster = fresh_cluster()

    def transfer(txn):
        balance = yield from txn.read("account:alice")
        txn.write("account:alice", balance - 10)
        txn.write("account:bob", 10)

    result = cluster.run_txn(transfer)
    assert result.committed and bool(result)
    assert isinstance(result, TxnResult)

    def audit(txn):
        values = yield from txn.read_many(["account:alice", "account:bob"])
        return values

    checked = cluster.run_txn(audit, node=1, read_only=True)
    assert checked.committed
    assert checked.value == {"account:alice": 90, "account:bob": 10}


@pytest.mark.parametrize("protocol", ["fwkv", "walter"])
def test_run_txn_works_on_every_mvcc_protocol(protocol):
    cluster = fresh_cluster(protocol)

    def bump(txn):
        balance = yield from txn.read("account:bob")
        txn.write("account:bob", balance + 5)
        return balance

    result = cluster.run_txn(bump, node=2)
    assert result.committed and result.value == 0


def test_run_txn_plain_function_body_writes_blind():
    cluster = fresh_cluster()
    result = cluster.run_txn(lambda txn: txn.write("account:bob", 42))
    assert result.committed

    def check(txn):
        return (yield from txn.read("account:bob"))

    assert cluster.run_txn(check, read_only=True).value == 42


def test_run_txn_explicit_commit_and_rollback():
    cluster = fresh_cluster()

    def committed_explicitly(txn):
        txn.write("account:bob", 7)
        ok = yield from txn.commit()
        return ok

    result = cluster.run_txn(committed_explicitly)
    assert result.committed and result.value is True

    def rolled_back(txn):
        txn.write("account:bob", 999)
        txn.rollback()
        if False:  # pragma: no cover - makes the body a generator
            yield

    result = cluster.run_txn(rolled_back)
    assert not result.committed

    def check(txn):
        return (yield from txn.read("account:bob"))

    assert cluster.run_txn(check, read_only=True).value == 7


def test_txn_subroutine_composes_inside_one_process():
    cluster = fresh_cluster()

    def add(amount):
        def body(txn):
            balance = yield from txn.read("account:bob")
            txn.write("account:bob", balance + amount)

        return body

    def driver():
        first = yield from cluster.txn(add(1))
        second = yield from cluster.txn(add(2))
        return first, second

    first, second = cluster.run_process(driver())
    assert first.committed and second.committed
    assert first.txn_id != second.txn_id

    def check(txn):
        return (yield from txn.read("account:bob"))

    assert cluster.run_txn(check, read_only=True).value == 3
