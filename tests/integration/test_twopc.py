"""Dedicated tests for the serializable 2PC-baseline."""

import pytest

from repro.metrics import check_no_read_skew
from tests.integration.scenario_tools import (
    make_cluster,
    retry_update,
    update_txn,
)


def test_read_validation_detects_stale_reads():
    """A write sliding between read and commit aborts the reader."""
    cluster = make_cluster(
        "2pc", 2, {"x": 1, "summary": 0}, initial={"x": 1, "summary": 0}
    )
    read_done = cluster.sim.event()
    writer_done = cluster.sim.event()
    outcome = {}

    def reader_writer():
        node = cluster.node(0)
        txn = node.begin(is_read_only=False)
        value = yield from node.read(txn, "x")
        read_done.succeed()
        yield writer_done
        node.write(txn, "summary", value + 1)  # writes elsewhere; x only read
        outcome["rw"] = yield from node.commit(txn)

    def writer():
        yield read_done
        ok, _ = yield from update_txn(cluster, 1, writes={"x": 2})
        outcome["w"] = ok
        writer_done.succeed()

    cluster.spawn(reader_writer())
    cluster.spawn(writer())
    cluster.run()
    assert outcome["w"] is True
    assert outcome["rw"] is False, "validation must catch the stale read of x"
    assert cluster.metrics.aborts_by_reason.get("validation", 0) == 1


def test_decide_waits_for_acknowledgements():
    """Commit returns only after every participant applied the decision,
    so an immediately following read anywhere sees the writes."""
    placement = {"p": 0, "q": 1, "r": 2}
    cluster = make_cluster("2pc", 3, placement, initial={"p": 0, "q": 0, "r": 0})

    def proc():
        node = cluster.node(0)
        txn = node.begin(is_read_only=False)
        for key in placement:
            node.write(txn, key, 9)
        ok = yield from node.commit(txn)
        assert ok
        # No settling time: the commit already waited for decide-acks.
        observed = {}
        check = node.begin(is_read_only=True)
        for key in placement:
            observed[key] = yield from node.read(check, key)
        yield from node.commit(check)
        return observed

    assert cluster.run_process(proc()) == {"p": 9, "q": 9, "r": 9}


def test_read_locks_block_concurrent_writers_during_commit():
    """While a reader validates, a writer's prepare waits for the read
    lock, then aborts on validation -- not a lost update."""
    cluster = make_cluster("2pc", 2, {"x": 1, "y": 0}, initial={"x": 1, "y": 1})

    def contended_read_write(node_id, read_key, write_key, out):
        yield from retry_update(
            cluster, node_id,
            reads=[read_key],
            writes={write_key: lambda obs: obs[read_key] * 10},
        )
        out.append(node_id)

    done = []
    cluster.spawn(contended_read_write(0, "x", "y", done))
    cluster.spawn(contended_read_write(1, "y", "x", done))
    cluster.run()
    # Both eventually commit (retries resolve the conflict serially).
    assert sorted(done) == [0, 1]
    assert not cluster.any_locks_held()


def test_serializability_on_write_skew_pattern():
    """The classic SI write-skew anomaly must NOT occur under 2PC."""
    cluster = make_cluster(
        "2pc", 2, {"on_call_a": 0, "on_call_b": 1},
        initial={"on_call_a": 1, "on_call_b": 1}, record_history=True,
    )
    outcome = {}

    def doctor(name, my_key, other_key):
        node = cluster.node(0 if name == "a" else 1)
        txn = node.begin(is_read_only=False)
        mine = yield from node.read(txn, my_key)
        other = yield from node.read(txn, other_key)
        if mine + other > 1:
            node.write(txn, my_key, 0)  # go off call
        outcome[name] = yield from node.commit(txn)

    cluster.spawn(doctor("a", "on_call_a", "on_call_b"))
    cluster.spawn(doctor("b", "on_call_b", "on_call_a"))
    cluster.run()

    final_a = cluster.node(0).store.read("on_call_a").value
    final_b = cluster.node(1).store.read("on_call_b").value
    # Serializability: at least one doctor stays on call.
    assert final_a + final_b >= 1, "write skew slipped through"
    # And at least one transaction aborted (they genuinely conflict).
    assert not (outcome["a"] and outcome["b"]) or (final_a + final_b >= 1)


def test_write_skew_allowed_under_psi():
    """Contrast: the same pattern CAN leave both off call under PSI --
    write skew is exactly what snapshot isolation permits."""
    results = []
    for seed in range(3):
        cluster = make_cluster(
            "fwkv", 2, {"on_call_a": 0, "on_call_b": 1},
            initial={"on_call_a": 1, "on_call_b": 1}, seed=seed,
        )

        def doctor(name, node_id, my_key, other_key):
            node = cluster.node(node_id)
            txn = node.begin(is_read_only=False)
            mine = yield from node.read(txn, my_key)
            other = yield from node.read(txn, other_key)
            if mine + other > 1:
                node.write(txn, my_key, 0)
            yield from node.commit(txn)

        cluster.spawn(doctor("a", 0, "on_call_a", "on_call_b"))
        cluster.spawn(doctor("b", 1, "on_call_b", "on_call_a"))
        cluster.run()
        final = (
            cluster.node(0).store.chain("on_call_a").latest.value
            + cluster.node(1).store.chain("on_call_b").latest.value
        )
        results.append(final)
    assert 0 in results, (
        "under PSI the disjoint-write skew should commit both transactions"
    )


def test_read_only_snapshots_are_serializable():
    cluster = make_cluster(
        "2pc", 2, {"x": 0, "y": 1}, initial={"x": 0, "y": 0},
        record_history=True,
    )

    def churn():
        for i in range(1, 10):
            yield from retry_update(cluster, 0, writes={"x": i, "y": i})

    def reader():
        # Under the 2PC baseline even read-only transactions can abort
        # on validation (the paper's point); retry until committed.
        node = cluster.node(1)
        for _ in range(8):
            while True:
                txn = node.begin(is_read_only=True)
                x = yield from node.read(txn, "x")
                y = yield from node.read(txn, "y")
                ok = yield from node.commit(txn)
                if ok:
                    assert x == y
                    break
                yield cluster.sim.timeout(40e-6)
            yield cluster.sim.timeout(60e-6)

    cluster.spawn(churn())
    cluster.spawn(reader())
    cluster.run()
    assert check_no_read_skew(cluster.finalized_history()).ok
