"""The README's quickstart snippet must actually run."""

import os
import re

README = os.path.join(os.path.dirname(__file__), "..", "..", "README.md")


def test_readme_quickstart_executes():
    with open(README, encoding="utf-8") as fh:
        text = fh.read()
    blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
    assert blocks, "README must contain a python quickstart block"
    quickstart = blocks[0]
    assert "Cluster" in quickstart
    exec(compile(quickstart, "README-quickstart", "exec"), {})


def test_readme_mentions_all_deliverables():
    with open(README, encoding="utf-8") as fh:
        text = fh.read()
    for needle in (
        "DESIGN.md",
        "EXPERIMENTS.md",
        "pytest tests/",
        "pytest benchmarks/ --benchmark-only",
        "examples/",
    ):
        assert needle in text, f"README must mention {needle}"
