"""Figure 4: FW-KV's fresh first read saves an abort Walter must take.

Setup: key ``x`` is preferred at node 1.  A local transaction at node 1
installs a new version ``x1``; the asynchronous Propagate to node 0 is
delayed by 5 ms.  Before it arrives, a transaction at node 0 reads and
rewrites ``x``:

* FW-KV reads the latest ``x1`` on its first read, advances ``T.VC``, and
  commits on the first attempt;
* Walter's begin-time snapshot hides ``x1``; it reads the stale ``x0`` and
  fails validation repeatedly until the Propagate is delivered.
"""

from tests.integration.scenario_tools import make_cluster, retry_update, update_txn

DELAY = 5e-3
PLACEMENT = {"x": 1}


def run_scenario(protocol):
    """Install x1 at t=0, then read-modify-write x from node 0 at t=1ms."""
    cluster = make_cluster(protocol, 2, PLACEMENT, propagate_delay=DELAY)
    result = {}

    def installer():
        ok, _ = yield from update_txn(cluster, 1, writes={"x": "x1"})
        assert ok

    def snapshot_probe():
        # Just before the contender starts, node 0 must not have seen the
        # Propagate for x1 yet.
        yield cluster.sim.timeout(0.9e-3)
        result["site_vc_at_start"] = cluster.node(0).site_vc[1]

    def contender():
        attempts, observed = yield from retry_update(
            cluster, 0, writes={"x": "x2"}, reads=["x"], delay=1e-3
        )
        result["attempts"] = attempts
        result["observed"] = observed
        result["done_at"] = cluster.sim.now

    cluster.spawn(installer())
    cluster.spawn(snapshot_probe())
    cluster.spawn(contender())
    cluster.run()
    return cluster, result


def test_fwkv_commits_on_first_attempt_despite_delayed_propagate():
    cluster, result = run_scenario("fwkv")
    assert result["site_vc_at_start"] == 0, "Propagate must still be in flight"
    assert result["observed"]["x"] == "x1", "first read must be the latest version"
    assert result["attempts"] == 1
    assert cluster.metrics.aborts == 0


def test_walter_aborts_until_propagate_arrives():
    cluster, result = run_scenario("walter")
    assert result["site_vc_at_start"] == 0, "Propagate must still be in flight"
    assert result["attempts"] > 1, "Walter must abort at least once"
    assert result["done_at"] >= DELAY, "commit only possible after Propagate"
    # The eventually-successful attempt reads the fresh version.
    assert result["observed"]["x"] == "x1"
    assert cluster.metrics.aborts == result["attempts"] - 1


def test_both_protocols_install_x2_in_the_end():
    for protocol in ("fwkv", "walter"):
        cluster, _result = run_scenario(protocol)
        chain = cluster.node(1).store.chain("x")
        assert chain.latest.value == "x2"
        assert len(chain) == 3
        assert not cluster.any_locks_held()
