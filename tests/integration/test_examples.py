"""Smoke tests: every example script runs to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "social_network.py",
    "banking_freshness.py",
    "tpcc_demo.py",
    "trace_debugging.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    completed = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print their findings"


def test_social_network_shows_the_contrast():
    path = os.path.join(EXAMPLES_DIR, "social_network.py")
    completed = subprocess.run(
        [sys.executable, path], capture_output=True, text=True, timeout=300
    )
    out = completed.stdout
    assert "long fork" in out
    assert "no observable long fork" in out
