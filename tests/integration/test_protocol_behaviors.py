"""Cross-protocol behavioural guarantees."""

import pytest

from repro import Cluster, ClusterConfig
from repro.cluster import ExplicitDirectory
from tests.integration.scenario_tools import (
    make_cluster,
    read_only_txn,
    retry_update,
    update_txn,
)

ALL_PROTOCOLS = ("fwkv", "walter", "2pc")
PSI_PROTOCOLS = ("fwkv", "walter")


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_concurrent_increments_are_atomic(protocol):
    """N read-modify-write transactions on one key must all take effect."""
    num_nodes = 4
    cluster = make_cluster(protocol, num_nodes, {"counter": 0}, initial={"counter": 0})
    workers = 8

    def incrementer(node_id, stagger):
        yield from retry_update(
            cluster,
            node_id,
            reads=["counter"],
            writes={"counter": lambda obs: obs["counter"] + 1},
            delay=stagger,
        )

    for i in range(workers):
        cluster.spawn(incrementer(i % num_nodes, stagger=i * 3e-6))
    cluster.run()

    final = cluster.run_process(read_only_txn(cluster, 0, ["counter"]))
    assert final["counter"] == workers
    assert not cluster.any_locks_held()


@pytest.mark.parametrize("protocol", PSI_PROTOCOLS)
def test_read_only_transactions_never_abort(protocol):
    cluster = make_cluster(protocol, 3, {"a": 0, "b": 1}, initial={"a": 1, "b": 2})

    def churn():
        yield from retry_update(cluster, 1, reads=["a"], writes={"a": "new"})

    def reader(node_id):
        for _ in range(5):
            observed = yield from read_only_txn(cluster, node_id, ["a", "b"])
            assert set(observed) == {"a", "b"}

    cluster.spawn(churn())
    cluster.spawn(reader(0))
    cluster.spawn(reader(2))
    cluster.run()
    assert cluster.metrics.aborts_by_reason.get("validation", 0) == 0 or protocol


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_write_inside_read_only_txn_rejected(protocol):
    cluster = make_cluster(protocol, 2, {"x": 0})
    node = cluster.node(0)
    txn = node.begin(is_read_only=True)
    with pytest.raises(ValueError):
        node.write(txn, "x", 1)


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_read_your_own_writes(protocol):
    cluster = make_cluster(protocol, 2, {"x": 1}, initial={"x": 1})

    def txn():
        node = cluster.node(0)
        t = node.begin(is_read_only=False)
        before = yield from node.read(t, "x")
        node.write(t, "x", before + 41)
        after = yield from node.read(t, "x")
        ok = yield from node.commit(t)
        return before, after, ok

    before, after, ok = cluster.run_process(txn())
    assert (before, after, ok) == (1, 42, True)


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_rereads_return_stable_values(protocol):
    """A transaction re-reading a key sees the version it already saw."""
    cluster = make_cluster(protocol, 3, {"x": 1}, initial={"x": "old"})
    gate = cluster.sim.event()
    result = {}

    def reader():
        node = cluster.node(0)
        t = node.begin(is_read_only=True)
        result["first"] = yield from node.read(t, "x")
        gate.succeed()
        yield cluster.sim.timeout(1e-3)  # the overwrite lands meanwhile
        result["second"] = yield from node.read(t, "x")
        yield from node.commit(t)

    def overwriter():
        yield gate
        ok, _ = yield from update_txn(cluster, 2, writes={"x": "new"})
        assert ok

    cluster.spawn(reader())
    cluster.spawn(overwriter())
    cluster.run()
    assert result["first"] == result["second"] == "old"


@pytest.mark.parametrize("protocol", PSI_PROTOCOLS)
def test_aborted_transaction_leaves_no_trace(protocol):
    """A validation abort must not install versions or leak locks."""
    cluster = make_cluster(protocol, 2, {"x": 1}, initial={"x": 0})
    read_done = cluster.sim.event()
    winner_done = cluster.sim.event()
    outcome = {}

    def loser():
        node = cluster.node(0)
        t = node.begin(is_read_only=False)
        _ = yield from node.read(t, "x")
        node.write(t, "x", "loser")
        read_done.succeed()
        yield winner_done  # a competing commit lands first
        yield cluster.sim.timeout(500e-6)
        outcome["loser"] = yield from node.commit(t)

    def winner():
        yield read_done
        ok, _ = yield from update_txn(cluster, 1, writes={"x": "winner"})
        outcome["winner"] = ok
        winner_done.succeed()

    cluster.spawn(loser())
    cluster.spawn(winner())
    cluster.run()
    assert outcome["winner"] is True
    assert outcome["loser"] is False
    chain = cluster.node(1).store.chain("x")
    assert chain.latest.value == "winner"
    assert len(chain) == 2
    assert not cluster.any_locks_held()


def test_2pc_read_only_transactions_can_abort():
    """The baseline's distinguishing cost: even read-only transactions
    validate and may fail when a concurrent write slips between a read
    and the commit point."""
    cluster = make_cluster("2pc", 2, {"x": 0, "y": 1}, initial={"x": 1, "y": 1})
    gate = cluster.sim.event()
    outcome = {}

    def reader():
        node = cluster.node(0)
        t = node.begin(is_read_only=True)
        outcome["x"] = yield from node.read(t, "x")
        gate.succeed()
        yield cluster.sim.timeout(500e-6)  # writer commits in this window
        outcome["y"] = yield from node.read(t, "y")
        outcome["ro_commit"] = yield from node.commit(t)

    def writer():
        yield gate
        ok, _ = yield from update_txn(cluster, 1, writes={"x": 2})
        outcome["writer"] = ok

    cluster.spawn(reader())
    cluster.spawn(writer())
    cluster.run()
    assert outcome["writer"] is True
    assert outcome["ro_commit"] is False, "x changed under the reader"


@pytest.mark.parametrize("protocol", PSI_PROTOCOLS)
def test_site_clocks_converge_after_quiescence(protocol):
    cluster = make_cluster(protocol, 4, {f"k{i}": i % 4 for i in range(8)})

    def worker(node_id):
        for round_no in range(3):
            yield from retry_update(
                cluster, node_id, writes={f"k{(node_id + round_no) % 8}": round_no}
            )

    for node_id in range(4):
        cluster.spawn(worker(node_id))
    cluster.run()
    clocks = cluster.site_clocks()
    assert all(clock == clocks[0] for clock in clocks), (
        "after all Propagates are drained every node knows every commit"
    )


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError, match="unknown protocol"):
        Cluster("bogus", ClusterConfig(num_nodes=2))
