"""Tests for the Cluster facade: catalogs, history finalisation, probes."""

import pytest

from repro import Cluster, ClusterConfig
from tests.integration.scenario_tools import (
    make_cluster,
    read_only_txn,
    update_txn,
)


def test_version_catalog_for_mvcc():
    cluster = make_cluster("fwkv", 2, {"x": 0, "y": 1}, initial={"x": 1, "y": 2})
    cluster.run_process(update_txn(cluster, 0, writes={"x": 10, "y": 20}))
    catalog = cluster.version_catalog()
    assert catalog[("x", 0)][2] is None  # loaded version, no writer
    origin, seq, writer = catalog[("x", 1)]
    assert origin == 0 and seq == 1 and writer is not None
    assert catalog[("y", 1)][2] == writer  # same transaction wrote both


def test_version_catalog_for_2pc():
    cluster = make_cluster("2pc", 2, {"x": 0}, initial={"x": 1})
    cluster.run_process(update_txn(cluster, 1, writes={"x": 5}))
    catalog = cluster.version_catalog()
    assert catalog[("x", 0)][2] is None
    assert catalog[("x", 1)][2] is not None


def test_finalized_history_resolves_write_vids():
    cluster = make_cluster("fwkv", 2, {"x": 0, "y": 1}, initial={"x": 1, "y": 2})
    cluster.run_process(update_txn(cluster, 0, writes={"x": 10, "y": 20}))
    cluster.run_process(read_only_txn(cluster, 1, ["x", "y"]))
    history = cluster.finalized_history()
    updates = history.committed_updates()
    assert len(updates) == 1
    written = {op.key: op.vid for op in updates[0].writes()}
    assert written == {"x": 1, "y": 1}
    reader = history.committed_read_only()[0]
    assert {op.key for op in reader.reads()} == {"x", "y"}


def test_finalized_history_idempotent():
    cluster = make_cluster("fwkv", 2, {"x": 0}, initial={"x": 1})
    cluster.run_process(update_txn(cluster, 0, writes={"x": 2}))
    first = cluster.finalized_history()
    count = len(first.committed_updates()[0].writes())
    second = cluster.finalized_history()
    assert len(second.committed_updates()[0].writes()) == count


def test_finalized_history_requires_recording():
    cluster = Cluster("fwkv", ClusterConfig(num_nodes=2))
    with pytest.raises(RuntimeError, match="history recording"):
        cluster.finalized_history()


def test_site_clocks_empty_for_2pc():
    cluster = make_cluster("2pc", 2, {"x": 0})
    assert cluster.site_clocks() == []


def test_load_routes_to_preferred_site():
    cluster = make_cluster("fwkv", 3, {"a": 2}, initial={"a": 9})
    assert "a" in cluster.node(2).store
    assert "a" not in cluster.node(0).store


def test_load_many_returns_count():
    cluster = Cluster("walter", ClusterConfig(num_nodes=2))
    assert cluster.load_many((f"k{i}", i) for i in range(10)) == 10
