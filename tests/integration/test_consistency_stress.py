"""Randomized concurrency stress with offline consistency checking.

Many closed-loop clients run random read-only and read-modify-write
transactions against a small key space (to force conflicts).  Afterwards
the recorded history must satisfy the PSI obligations: no fractured reads
and per-origin prefix order.  Long forks are permitted by PSI for
concurrent transactions, so they are not asserted here (the controlled
Figure 1 scenario covers the observable case).
"""

import pytest

from repro import Cluster, ClusterConfig, NetworkConfig
from repro.cluster import ModuloDirectory
from repro.metrics import check_no_read_skew, check_site_order
from repro.sim.rng import make_rng

NUM_NODES = 4
NUM_KEYS = 24
CLIENTS_PER_NODE = 2
TXNS_PER_CLIENT = 25


def build_cluster(protocol, seed, propagate_delay=0.0):
    network = NetworkConfig(jitter=2e-6)
    if propagate_delay:
        network = network.with_propagate_delay(propagate_delay)
    config = ClusterConfig(num_nodes=NUM_NODES, seed=seed, network=network)
    cluster = Cluster(
        protocol,
        config,
        directory=ModuloDirectory(NUM_NODES),
        record_history=True,
    )
    for i in range(NUM_KEYS):
        cluster.load(f"k{i}", 0)
    return cluster


def client(cluster, node_id, client_id, seed):
    rng = make_rng(seed, "client", node_id, client_id)
    node = cluster.node(node_id)
    for _ in range(TXNS_PER_CLIENT):
        keys = rng.sample([f"k{i}" for i in range(NUM_KEYS)], 2)
        read_only = rng.random() < 0.5
        while True:
            txn = node.begin(is_read_only=read_only)
            values = []
            for key in keys:
                value = yield from node.read(txn, key)
                values.append(value)
            if not read_only:
                for key, value in zip(keys, values):
                    node.write(txn, key, value + 1)
            ok = yield from node.commit(txn)
            if ok:
                break
            yield cluster.sim.timeout(rng.uniform(50e-6, 200e-6))
        yield cluster.sim.timeout(rng.uniform(0, 50e-6))


def run_stress(protocol, seed, propagate_delay=0.0):
    cluster = build_cluster(protocol, seed, propagate_delay)
    for node_id in range(NUM_NODES):
        for client_id in range(CLIENTS_PER_NODE):
            cluster.spawn(client(cluster, node_id, client_id, seed))
    cluster.run()
    return cluster


@pytest.mark.parametrize("protocol", ("fwkv", "walter", "2pc"))
@pytest.mark.parametrize("seed", (1, 2))
def test_history_atomic_visibility(protocol, seed):
    cluster = run_stress(protocol, seed)
    history = cluster.finalized_history()
    assert len(history) >= NUM_NODES * CLIENTS_PER_NODE * TXNS_PER_CLIENT
    result = check_no_read_skew(history)
    assert result.ok, result.violations[:5]


@pytest.mark.parametrize("protocol", ("fwkv", "walter"))
@pytest.mark.parametrize("seed", (1, 2))
def test_history_site_order(protocol, seed):
    cluster = run_stress(protocol, seed)
    history = cluster.finalized_history()
    result = check_site_order(history, cluster.version_catalog())
    assert result.ok, result.violations[:5]


@pytest.mark.parametrize("protocol", ("fwkv", "walter"))
def test_consistency_holds_under_delayed_propagation(protocol):
    cluster = run_stress(protocol, seed=3, propagate_delay=1e-3)
    history = cluster.finalized_history()
    assert check_no_read_skew(history).ok
    assert check_site_order(history, cluster.version_catalog()).ok


@pytest.mark.parametrize("protocol", ("fwkv", "walter", "2pc"))
def test_quiescence_invariants(protocol):
    cluster = run_stress(protocol, seed=4)
    assert not cluster.any_locks_held()
    assert cluster.total_vas_entries() == 0
    clocks = cluster.site_clocks()
    assert all(clock == clocks[0] for clock in clocks)


def test_update_increments_sum_to_writes():
    """The total increment count must equal committed update transactions
    times two keys each (lost-update freedom under PSI write-conflicts)."""
    cluster = run_stress("fwkv", seed=5)
    committed_updates = [
        r for r in cluster.finalized_history() if not r.is_read_only
    ]
    total = 0
    for node in cluster.nodes:
        for key in node.store.keys():
            total += node.store.chain(key).latest.value
    assert total == 2 * len(committed_updates)


def test_deterministic_replay():
    """Identical seeds produce identical histories."""
    h1 = [
        (r.txn_id, r.node_id, tuple((o.kind, o.key, o.vid) for o in r.ops))
        for r in run_stress("fwkv", seed=7).finalized_history()
    ]
    h2 = [
        (r.txn_id, r.node_id, tuple((o.kind, o.key, o.vid) for o in r.ops))
        for r in run_stress("fwkv", seed=7).finalized_history()
    ]
    assert h1 == h2
