"""Group-commit crash semantics: a crash between buffer and flush loses
exactly the unflushed WAL suffix, and never an acknowledged commit.

The flusher emits a ``wal_sync`` trace at the instant a sync *starts* --
after records joined the group buffer, before the fsync completes -- so
a trace-point crash there lands precisely in the window the tentpole's
recovery guarantee is about: every record past ``durable_lsn`` is
volatile and must vanish, while every commit the client saw acknowledged
had already waited for its Decision record's covering sync.
"""

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    DurabilityConfig,
    NetworkConfig,
    RpcConfig,
)
from repro.cluster import ModuloDirectory
from repro.faults import CRASH_DURABLE, FaultEvent, Nemesis
from repro.metrics import check_no_read_skew, check_site_order
from repro.net.rpc import RpcTimeoutError
from repro.sim.rng import make_rng

from tests.harness.recovery_tools import (
    TracePoint,
    assert_no_lost_commits,
    restart,
)

NUM_NODES = 4
NUM_KEYS = 16
VICTIM = 2

pytestmark = pytest.mark.recovery


def build(protocol, seed, *, group_commit_window):
    config = ClusterConfig(
        num_nodes=NUM_NODES,
        seed=seed,
        prepared_lease=5e-3,
        # assert_no_lost_commits matches versions by writer-txn stamp, so
        # every version must survive the run.
        gc_enabled=False,
        durability=DurabilityConfig(
            wal_enabled=True,
            termination_query=True,
            fsync_latency=50e-6,
            group_commit_window=group_commit_window,
            group_commit_max_records=32,
        ),
        network=NetworkConfig(
            jitter=5e-6,
            rpc=RpcConfig(request_timeout=1.5e-3, max_attempts=3),
        ),
    )
    cluster = Cluster(
        protocol, config, directory=ModuloDirectory(NUM_NODES),
        record_history=True,
    )
    for i in range(NUM_KEYS):
        cluster.load(f"k{i}", 0)
    return cluster, Nemesis(cluster)


def client(cluster, node_id, client_id, committed, *, txns=30):
    """Closed-loop client recording every *acknowledged* update commit."""
    rng = make_rng(cluster.config.seed, "gc-recovery", node_id, client_id)
    node = cluster.node(node_id)
    keys = [f"k{i}" for i in range(NUM_KEYS)]
    for _ in range(txns):
        chosen = rng.sample(keys, 2)
        read_only = rng.random() < 0.3
        for _attempt in range(6):
            txn = node.begin(is_read_only=read_only)
            try:
                values = []
                for key in chosen:
                    values.append((yield from node.read(txn, key)))
                if not read_only:
                    for key, value in zip(chosen, values):
                        node.write(txn, key, value + 1)
                ok = yield from node.commit(txn)
            except RpcTimeoutError:
                node.abort(txn)
                ok = False
            if ok:
                if not read_only:
                    committed[txn.txn_id] = list(chosen)
                break
            yield cluster.sim.timeout(rng.uniform(50e-6, 250e-6))
        yield cluster.sim.timeout(rng.uniform(0, 100e-6))


def run_crash_scenario(protocol, *, group_commit_window, sync_count, seed=47):
    """Crash the victim at its ``sync_count``-th wal_sync start, restart
    it mid-run, and drive the workload to completion.

    Returns ``(cluster, committed, loss_snapshot)`` where the snapshot
    captures the victim's exact volatile suffix at the crash instant.
    """
    cluster, nemesis = build(
        protocol, seed, group_commit_window=group_commit_window
    )
    victim = cluster.nodes[VICTIM]
    snapshot = {}

    def crash_action(_record):
        # Captured before the fault applies: the volatile suffix the
        # freeze is about to drop.
        snapshot["expected_loss"] = victim.wal.tail_lsn - victim.wal.durable_lsn
        snapshot["durable_lsn"] = victim.wal.durable_lsn
        nemesis.apply(FaultEvent(cluster.sim.now, CRASH_DURABLE, VICTIM))

    point = TracePoint(
        cluster, "wal_sync", crash_action, node=VICTIM, count=sync_count
    )

    def restarter():
        while not point.fired:
            yield cluster.sim.timeout(500e-6)
        yield cluster.sim.timeout(2e-3)
        restart(cluster, nemesis, VICTIM)

    committed = {}
    for node_id in range(NUM_NODES):
        for client_id in range(2):
            cluster.spawn(client(cluster, node_id, client_id, committed))
    cluster.spawn(restarter())
    cluster.run()

    assert point.fired, "workload never reached the chosen sync point"
    return cluster, committed, snapshot


@pytest.mark.parametrize("protocol", ("fwkv", "walter"))
def test_crash_between_buffer_and_flush_loses_exact_suffix(protocol):
    cluster, committed, snapshot = run_crash_scenario(
        protocol, group_commit_window=200e-6, sync_count=25
    )
    victim = cluster.nodes[VICTIM]

    # The freeze dropped exactly the records past durable_lsn -- no
    # fewer (volatile records cannot survive) and no more (the durable
    # prefix is never touched).  A wal_sync emit guarantees at least one
    # record was pending, so the crash genuinely lost something.
    assert snapshot["expected_loss"] >= 1
    assert victim.wal.lost_on_crash == snapshot["expected_loss"]
    assert victim.recoveries == 1
    assert cluster.metrics.recoveries == 1

    # Replay restarted from the surviving prefix: the records the crash
    # kept were re-read, none re-lost, and the flusher re-armed (the log
    # drained fully by quiescence).
    assert victim.wal.durable_lsn == victim.wal.tail_lsn
    assert victim.wal.tail_lsn >= snapshot["durable_lsn"]

    # No acknowledged commit vanished: every write whose commit a client
    # observed is installed at its key's preferred site.
    assert_no_lost_commits(cluster, committed)

    history = cluster.finalized_history()
    skew = check_no_read_skew(history)
    assert skew.ok, skew.violations[:3]
    order = check_site_order(history, cluster.version_catalog())
    assert order.ok, order.violations[:3]
    assert not cluster.any_locks_held()
    clocks = cluster.site_clocks()
    assert all(clock == clocks[0] for clock in clocks)


def test_crash_under_per_record_durability_loses_exact_suffix():
    # window == 0: the naive one-record-per-sync regime must satisfy the
    # same contract (the suffix past durable_lsn is exactly what dies).
    cluster, committed, snapshot = run_crash_scenario(
        "fwkv", group_commit_window=0.0, sync_count=40
    )
    victim = cluster.nodes[VICTIM]
    assert snapshot["expected_loss"] >= 1
    assert victim.wal.lost_on_crash == snapshot["expected_loss"]
    assert victim.wal.durable_lsn == victim.wal.tail_lsn
    assert_no_lost_commits(cluster, committed)
    clocks = cluster.site_clocks()
    assert all(clock == clocks[0] for clock in clocks)
