"""Group commit and adaptive batching: inert by default, safe when on.

Mirrors ``test_batching_equivalence``'s two levels of assurance for the
PR's new perf knobs:

* Disabled-by-default equivalence.  ``group_commit_window`` /
  ``group_commit_max_records`` are inert while ``fsync_latency == 0``
  (the WAL is unbuffered, every append instantly durable), and the
  adaptive AIMD parameters are inert while ``adaptive`` is off -- a run
  with those knobs set must be *bit-identical* to the seed defaults:
  same commit log, same per-node siteVC history at every quiescence
  point, same WAL contents.
* Enabled, the durable group-commit path and adaptive batching may shift
  which transactions win races (commit acks now wait on batched syncs;
  windows stretch and shrink) but must preserve PSI-checker cleanliness
  on a concurrent chaos workload and still quiesce fully converged.
"""

import pytest

from repro import Cluster, ClusterConfig, NetworkConfig
from repro.cluster import ModuloDirectory
from repro.config import BatchingConfig, DurabilityConfig
from repro.metrics import check_no_read_skew, check_site_order
from repro.sim.rng import make_rng

from tests.integration.scenario_tools import read_only_txn, update_txn

NODES = 3
KEYS = [f"k{i}" for i in range(9)]


def _make_cluster(protocol, *, batching=None, durability=None):
    config = ClusterConfig(
        num_nodes=NODES,
        seed=23,
        batching=batching or BatchingConfig(),
        durability=durability or DurabilityConfig(),
        network=NetworkConfig(jitter=0.0),
    )
    cluster = Cluster(
        protocol, config, directory=ModuloDirectory(NODES), record_history=True
    )
    for key in KEYS:
        cluster.load(key, 0)
    return cluster


def _commit_log(cluster):
    return [
        (
            r.txn_id,
            r.node_id,
            r.is_read_only,
            r.seq_no,
            r.commit_vc,
            tuple((op.kind, op.key, op.vid) for op in r.ops),
        )
        for r in cluster.finalized_history()
    ]


def _run_sequential(protocol, *, batching=None, durability=None):
    cluster = _make_cluster(protocol, batching=batching, durability=durability)
    rng = make_rng(23, "gc-equiv")
    site_vc_history = []
    for round_no in range(30):
        node_id = rng.randrange(NODES)
        chosen = rng.sample(KEYS, 2)
        if rng.random() < 0.4:
            cluster.spawn(read_only_txn(cluster, node_id, chosen))
        else:
            cluster.spawn(
                update_txn(
                    cluster,
                    node_id,
                    {key: round_no for key in chosen},
                    reads=chosen,
                )
            )
        cluster.run()
        site_vc_history.append(tuple(cluster.site_clocks()))
    wal_lengths = tuple(len(node.wal) if node.wal else 0 for node in cluster.nodes)
    return _commit_log(cluster), site_vc_history, wal_lengths


@pytest.mark.parametrize("protocol", ("fwkv", "walter"))
def test_group_commit_knobs_inert_without_fsync_latency(protocol):
    baseline = _run_sequential(
        protocol, durability=DurabilityConfig(wal_enabled=True)
    )
    knobs_set = _run_sequential(
        protocol,
        durability=DurabilityConfig(
            wal_enabled=True,
            group_commit_window=300e-6,
            group_commit_max_records=8,
        ),
    )
    assert knobs_set[0] == baseline[0], "commit logs diverged"
    assert knobs_set[1] == baseline[1], "siteVC histories diverged"
    assert knobs_set[2] == baseline[2], "WAL lengths diverged"


@pytest.mark.parametrize("protocol", ("fwkv", "walter"))
def test_adaptive_parameters_inert_while_adaptive_off(protocol):
    baseline = _run_sequential(protocol)
    knobs_set = _run_sequential(
        protocol,
        batching=BatchingConfig(
            adaptive=False, max_window=5e-3, adaptive_step=1e-3,
            adaptive_decay=0.9,
        ),
    )
    assert knobs_set[0] == baseline[0], "commit logs diverged"
    assert knobs_set[1] == baseline[1], "siteVC histories diverged"


def _chaos(cluster, *, clients=2, txns=40):
    seed = cluster.config.seed

    def client(node_id, client_id):
        rng = make_rng(seed, "gc-chaos", node_id, client_id)
        node = cluster.node(node_id)
        for _ in range(txns):
            chosen = rng.sample(KEYS, 2)
            read_only = rng.random() < 0.4
            while True:
                txn = node.begin(is_read_only=read_only)
                values = []
                for key in chosen:
                    value = yield from node.read(txn, key)
                    values.append(value)
                if not read_only:
                    for key, value in zip(chosen, values):
                        node.write(txn, key, value + 1)
                ok = yield from node.commit(txn)
                if ok:
                    break
                yield cluster.sim.timeout(rng.uniform(50e-6, 150e-6))
            yield cluster.sim.timeout(rng.uniform(0, 100e-6))

    for node_id in range(NODES):
        for client_id in range(clients):
            cluster.spawn(client(node_id, client_id))
    cluster.run()


def _assert_consistent(cluster, *, min_commits=240):
    history = cluster.finalized_history()
    assert len(history) >= min_commits
    skew = check_no_read_skew(history)
    assert skew.ok, skew.violations[:3]
    order = check_site_order(history, cluster.version_catalog())
    assert order.ok, order.violations[:3]
    assert not cluster.any_locks_held()
    clocks = cluster.site_clocks()
    assert all(clock == clocks[0] for clock in clocks)


@pytest.mark.parametrize("protocol", ("fwkv", "walter"))
def test_durable_group_commit_chaos_stays_consistent(protocol):
    cluster = _make_cluster(
        protocol,
        durability=DurabilityConfig(
            wal_enabled=True,
            fsync_latency=50e-6,
            group_commit_window=200e-6,
            group_commit_max_records=32,
        ),
    )
    _chaos(cluster)
    _assert_consistent(cluster)
    # The sync schedule actually batched: fewer syncs than records.
    assert cluster.metrics.wal_syncs > 0
    assert cluster.metrics.wal_records_synced > cluster.metrics.wal_syncs
    # Quiescence drained every buffer: nothing volatile is left behind.
    for node in cluster.nodes:
        assert node.wal.durable_lsn == node.wal.tail_lsn


@pytest.mark.parametrize("protocol", ("fwkv", "walter"))
def test_durable_naive_chaos_stays_consistent(protocol):
    cluster = _make_cluster(
        protocol,
        durability=DurabilityConfig(wal_enabled=True, fsync_latency=20e-6),
    )
    _chaos(cluster, txns=20)
    _assert_consistent(cluster, min_commits=120)
    # Per-record mode: every sync covers exactly one record.
    assert cluster.metrics.wal_syncs == cluster.metrics.wal_records_synced > 0
    for node in cluster.nodes:
        assert node.wal.durable_lsn == node.wal.tail_lsn


@pytest.mark.parametrize("protocol", ("fwkv", "walter"))
def test_adaptive_batching_chaos_stays_consistent(protocol):
    cluster = _make_cluster(
        protocol,
        batching=BatchingConfig(
            adaptive=True, max_window=1e-3, adaptive_step=50e-6,
            adaptive_decay=0.5,
        ),
    )
    _chaos(cluster)
    _assert_consistent(cluster)
    if protocol == "fwkv":
        assert cluster.total_vas_entries() == 0


def test_adaptive_with_durable_group_commit_combined():
    cluster = _make_cluster(
        "fwkv",
        batching=BatchingConfig(adaptive=True),
        durability=DurabilityConfig(
            wal_enabled=True,
            fsync_latency=50e-6,
            group_commit_window=200e-6,
        ),
    )
    _chaos(cluster)
    _assert_consistent(cluster)
    assert cluster.metrics.wal_records_synced > cluster.metrics.wal_syncs > 0


# ----------------------------------------------------------------------
# The AIMD controller itself, exercised deterministically on one node.
# ----------------------------------------------------------------------

def _adaptive_node(step=50e-6, max_window=1e-3, decay=0.5):
    cluster = _make_cluster(
        "walter",
        batching=BatchingConfig(
            adaptive=True, adaptive_step=step, max_window=max_window,
            adaptive_decay=decay,
        ),
    )
    return cluster, cluster.node(0)


def test_adaptive_pressure_probe_opens_closed_window():
    from repro.core.mvcc_node import _PRESSURE_OPEN

    cluster, node = _adaptive_node()
    step = cluster.config.batching.adaptive_step
    # A closed window serves sends immediately; back-to-back sends at the
    # same instant are maximally hot (gap zero), so after the cold first
    # send plus _PRESSURE_OPEN hot ones the window opens at one step.
    for seq_no in range(_PRESSURE_OPEN + 1):
        node._send_propagate(set(), seq_no)
        opened = dict(node._adaptive_windows)
        if seq_no < _PRESSURE_OPEN:
            assert not opened, f"window opened early after send {seq_no}"
    destinations = {i for i in range(NODES) if i != node.node_id}
    assert opened == {site: step for site in destinations}
    # Once open, sends buffer instead of going out immediately.
    node._send_propagate(set(), 99)
    assert set(node._propagate_buffer) == destinations


def test_adaptive_window_grows_only_past_target_depth():
    from repro.core.mvcc_node import _TARGET_DEPTH

    cluster, node = _adaptive_node()
    batching = cluster.config.batching
    step = batching.adaptive_step
    site = (node.node_id + 1) % NODES

    # Depth inside the band: window holds (no ratchet toward max_window).
    node._adaptive_windows[site] = step
    node._propagate_buffer[site] = list(range(_TARGET_DEPTH))
    node._flush_propagate(site)
    assert node._adaptive_windows[site] == step

    # Depth beyond the band: additive growth, capped at max_window.
    node._propagate_buffer[site] = list(range(_TARGET_DEPTH + 1))
    node._flush_propagate(site)
    assert node._adaptive_windows[site] == 2 * step
    node._adaptive_windows[site] = batching.max_window
    node._propagate_buffer[site] = list(range(_TARGET_DEPTH + 1))
    node._flush_propagate(site)
    assert node._adaptive_windows[site] == batching.max_window

    # Singleton flush: multiplicative decay, snapping to zero (closed).
    node._adaptive_windows[site] = step
    node._propagate_buffer[site] = [1]
    node._flush_propagate(site)
    assert node._adaptive_windows[site] == step * batching.adaptive_decay
    node._adaptive_windows[site] = 1e-10
    node._propagate_buffer[site] = [2]
    node._flush_propagate(site)
    assert node._adaptive_windows[site] == 0.0
