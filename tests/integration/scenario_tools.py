"""Helpers for scripted protocol scenarios (the paper's Figures 1-4)."""

from repro import Cluster, ClusterConfig, NetworkConfig
from repro.cluster import ExplicitDirectory


def make_cluster(
    protocol,
    num_nodes,
    placement,
    initial=None,
    propagate_delay=0.0,
    record_history=True,
    seed=0,
):
    """A cluster with explicit key placement and optional Propagate delay.

    ``placement`` maps key -> preferred node; every placed key is loaded
    with ``initial.get(key, 0)``.
    """
    network = NetworkConfig(jitter=0.0)
    if propagate_delay:
        network = network.with_propagate_delay(propagate_delay)
    config = ClusterConfig(num_nodes=num_nodes, seed=seed, network=network)
    cluster = Cluster(
        protocol,
        config,
        directory=ExplicitDirectory(dict(placement)),
        record_history=record_history,
    )
    initial = initial or {}
    for key in placement:
        cluster.load(key, initial.get(key, 0))
    return cluster


def update_txn(cluster, node_id, writes, reads=(), delay=0.0):
    """Generator: run one update transaction; returns (ok, read_values)."""
    node = cluster.node(node_id)
    if delay:
        yield cluster.sim.timeout(delay)
    txn = node.begin(is_read_only=False)
    observed = {}
    for key in reads:
        observed[key] = yield from node.read(txn, key)
    for key, value in writes.items():
        node.write(txn, key, value)
    ok = yield from node.commit(txn)
    return ok, observed


def read_only_txn(cluster, node_id, keys, delay=0.0):
    """Generator: run one read-only transaction; returns observed dict."""
    node = cluster.node(node_id)
    if delay:
        yield cluster.sim.timeout(delay)
    txn = node.begin(is_read_only=True)
    observed = {}
    for key in keys:
        observed[key] = yield from node.read(txn, key)
    ok = yield from node.commit(txn)
    assert ok, "read-only transactions never abort"
    return observed


def retry_update(cluster, node_id, writes, reads=(), delay=0.0, backoff=100e-6):
    """Generator: retry an update transaction until it commits.

    Backoff is jittered (seeded per node) so two conflicting retry loops
    cannot livelock in deterministic lockstep.  Returns
    (attempts, read_values_of_last_attempt).
    """
    from repro.sim.rng import make_rng

    rng = make_rng(cluster.config.seed, "retry", node_id, repr(sorted(writes, key=repr)))
    node = cluster.node(node_id)
    if delay:
        yield cluster.sim.timeout(delay)
    attempts = 0
    while True:
        attempts += 1
        txn = node.begin(is_read_only=False)
        observed = {}
        for key in reads:
            observed[key] = yield from node.read(txn, key)
        for key, value in writes.items():
            if callable(value):
                node.write(txn, key, value(observed))
            else:
                node.write(txn, key, value)
        ok = yield from node.commit(txn)
        if ok:
            return attempts, observed
        yield cluster.sim.timeout(backoff * (0.5 + rng.random()))
