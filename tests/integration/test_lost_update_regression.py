"""Regression: the lost update admitted by clock-only write validation.

Found by the randomized soak test and minimised here.  The paper's write
validation (Alg. 5 line 29) checks ``latest.VC[origin] <= T.VC[origin]``;
for FW-KV that is unsound because ``T.VC`` can absorb knowledge of a
version that remains *invisible* to the transaction's reads:

* node 1 commits three local updates U0 (seq 1), U1 (seq 2), U2 (seq 3);
  its Propagate towards node 3 is congested, so node 3 only knows seq 1;
* update transaction T (node 0) reads ``k1`` at node 1 after U1, freezing
  its node-1 bound at 2;
* W commits ``k2`` on node 2 after U2's propagation arrived there, so W's
  commit clock carries node-1 entry 3 -- W is invisible to T forever;
* X commits ``k4`` locally on node 3 after W's propagation arrived there
  but while node 3 still only knows node-1 seq 1: X's clock has node-1
  entry 1 (*strictly below* T's bound, dodging the SCORe exclusion rule)
  and node-2 entry 1 (W!);
* T reads ``k4``, selects X's version (visible, not excluded) and merges
  its clock: ``T.VC[2]`` now covers W without T ever seeing W's write;
* T reads ``k2`` (old version -- W is invisible), writes ``k2`` back.

Alg. 5's test now passes (``W.seq = 1 <= T.VC[2] = 1``) and W's committed
write would be silently overwritten by a transaction that never observed
it -- a lost update, forbidden by PSI's write-conflict rule.  The fixed
validation compares the latest vid with the vid T actually read, and
aborts T.
"""

from repro.net.message import MessageType
from tests.integration.scenario_tools import make_cluster, update_txn

PLACEMENT = {"k1": 1, "k2": 2, "k3": 1, "k4": 3}
INITIAL = {"k1": 100, "k2": 200, "k3": 300, "k4": 400}
SLOW = 50e-3


def _delay_policy(envelope):
    # Congestion hits node 1's Propagate traffic towards node 3 from U1
    # onwards (seq >= 2); U0's announcement got through.
    if (
        envelope.msg_type == MessageType.PROPAGATE
        and (envelope.src, envelope.dst) == (1, 3)
        and envelope.payload.seq_no >= 2
    ):
        return SLOW
    return 0.0


def run_scenario():
    cluster = make_cluster("fwkv", 4, PLACEMENT, initial=INITIAL)
    cluster.network.delay_policy = _delay_policy
    sim = cluster.sim
    sync = {name: sim.event() for name in
            ("u0", "t_read_k1", "u2", "w", "x", "t_done")}
    result = {}

    def node1_writer():
        ok, _ = yield from update_txn(cluster, 1, writes={"k3": 1})  # U0 seq 1
        assert ok
        yield sim.timeout(300e-6)  # U0 propagates everywhere (incl. node 3... not: 1->3 delayed)
        ok, _ = yield from update_txn(cluster, 1, writes={"k3": 2})  # U1 seq 2
        assert ok
        yield sim.timeout(300e-6)  # U1 reaches nodes 0 and 2 (not 3)
        sync["u0"].succeed()
        yield sync["t_read_k1"]
        ok, _ = yield from update_txn(cluster, 1, writes={"k3": 3})  # U2 seq 3
        assert ok
        yield sim.timeout(300e-6)  # U2 reaches node 2
        sync["u2"].succeed()

    def w_writer():
        yield sync["u2"]
        ok, _ = yield from update_txn(cluster, 2, writes={"k2": 999})  # W
        assert ok
        yield sim.timeout(300e-6)  # W's propagate reaches node 3
        sync["w"].succeed()

    def x_writer():
        yield sync["w"]
        result["site_vc_3"] = cluster.node(3).site_vc.to_tuple()
        ok, _ = yield from update_txn(cluster, 3, writes={"k4": 777})  # X
        assert ok
        yield sim.timeout(100e-6)
        sync["x"].succeed()

    def t():
        yield sync["u0"]
        node = cluster.node(0)
        txn = node.begin(is_read_only=False)
        result["k1"] = yield from node.read(txn, "k1")
        result["t_vc_after_k1"] = txn.vc.to_tuple()
        sync["t_read_k1"].succeed()
        yield sync["x"]
        result["k4"] = yield from node.read(txn, "k4")
        result["t_vc_after_k4"] = txn.vc.to_tuple()
        result["k2_read"] = yield from node.read(txn, "k2")
        result["k2_latest"] = cluster.node(2).store.chain("k2").latest.value
        node.write(txn, "k2", result["k2_read"] + 1)
        result["t_committed"] = yield from node.commit(txn)
        sync["t_done"].succeed()

    for proc in (node1_writer(), w_writer(), x_writer(), t()):
        cluster.spawn(proc)
    cluster.run()
    return cluster, result


def test_construction_reaches_the_dangerous_state():
    _cluster, result = run_scenario()
    # Node 3 was cut off from node 1's progress (knows seq 1 only) but saw W.
    assert result["site_vc_3"][1] == 1
    assert result["site_vc_3"][2] == 1
    # T froze its node-1 bound at 2 and later absorbed X's clock.
    assert result["t_vc_after_k1"][1] == 2
    assert result["k4"] == 777, "X's version is visible and not excluded"
    assert result["t_vc_after_k4"][2] >= 1, "T's clock now covers W"
    # Yet W's write stayed invisible to T's read of k2.
    assert result["k2_latest"] == 999
    assert result["k2_read"] == 200


def test_write_validation_aborts_the_lost_update():
    cluster, result = run_scenario()
    assert result["t_committed"] is False, (
        "T overwrote a version it never observed: lost update"
    )
    assert cluster.node(2).store.chain("k2").latest.value == 999


def test_walter_is_immune_by_construction():
    """Walter's frozen snapshot keeps visibility and validation aligned:
    the same kind of schedule simply aborts (T's clock never covers W)."""
    cluster = make_cluster("walter", 3, {"k1": 1, "k2": 2}, initial=INITIAL)
    done = {}

    def t():
        node = cluster.node(0)
        txn = node.begin(is_read_only=False)
        _ = yield from node.read(txn, "k1")
        yield cluster.sim.timeout(1e-3)
        value = yield from node.read(txn, "k2")
        node.write(txn, "k2", value + 1)
        done["t"] = yield from node.commit(txn)

    def w():
        yield cluster.sim.timeout(200e-6)
        ok, _ = yield from update_txn(cluster, 2, writes={"k2": 999})
        done["w"] = ok

    cluster.spawn(t())
    cluster.spawn(w())
    cluster.run()
    assert done["w"] is True
    assert done["t"] is False
    assert cluster.node(2).store.chain("k2").latest.value == 999
