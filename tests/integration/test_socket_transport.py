"""Real-TCP transport integration suite (``pytest -m socket``).

Three layers of proof that the protocols survive a real wire:

* in-process loopback clusters -- every node on one simulator, but all
  inter-node traffic crossing actual TCP connections through the
  transport's listener, driven by the wall-clock pump;
* a seeded PSI workload over sockets with the same read-skew /
  site-order oracles the simulated suites use;
* a genuinely multi-process cluster (one OS process per node via
  ``repro.net.host``) whose merged history must also pass the oracles.

These tests move real bytes and real wall time, so they are marked
``socket`` and kept small; the sim suites carry the heavy scenario
load.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import Cluster, ClusterConfig, TransportConfig
from repro.harness.runner import run_experiment
from repro.metrics.psi_checker import check_no_read_skew, check_site_order
from repro.net.host import launch_cluster
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

pytestmark = pytest.mark.socket


def socket_config(**overrides) -> ClusterConfig:
    defaults = dict(
        num_nodes=3,
        seed=11,
        clients_per_node=2,
        transport=TransportConfig(kind="socket"),
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


# ----------------------------------------------------------------------
# In-process loopback cluster
# ----------------------------------------------------------------------
def test_transfer_txn_commits_over_real_tcp():
    with Cluster("fwkv", socket_config()) as cluster:
        cluster.load("account:alice", 100)
        cluster.load("account:bob", 0)

        def transfer(txn):
            balance = yield from txn.read("account:alice")
            txn.write("account:alice", balance - 10)
            txn.write("account:bob", 10)

        result = cluster.run_txn(transfer)
        assert result.committed
        stats = cluster.network.stats
        assert stats.messages_sent > 0
        assert stats.messages_dropped == 0

        def audit(txn):
            alice = yield from txn.read("account:alice")
            bob = yield from txn.read("account:bob")
            return alice + bob

        audited = cluster.run_txn(audit, read_only=True)
        assert audited.committed
        assert audited.value == 100


def test_seeded_workload_over_sockets_passes_psi_oracles():
    from repro.config import RunConfig

    result = run_experiment(
        "fwkv",
        YCSBWorkload(YCSBConfig(num_keys=48)),
        socket_config(),
        RunConfig(duration=0.4, warmup=0.05),
        record_history=True,
    )
    cluster = result.cluster
    try:
        assert result.metrics["commits"] > 0
        history = cluster.finalized_history()
        catalog = cluster.version_catalog()
        check_no_read_skew(history)
        check_site_order(history, catalog)
    finally:
        cluster.close()


def test_close_is_idempotent_and_run_after_close_unsupported():
    cluster = Cluster("fwkv", socket_config())
    cluster.close()
    cluster.close()  # second close must be a no-op


def test_self_messages_still_pass_through_the_serde():
    # Node-to-self traffic skips TCP but not the byte codec: a payload
    # that cannot cross a real wire must fail on every backend path.
    from repro.net.serde import WireEncodeError

    with Cluster("fwkv", socket_config()) as cluster:

        class Opaque:
            pass

        with pytest.raises(WireEncodeError):
            cluster.network.send(0, 0, "Heartbeat", Opaque())


def test_unknown_destination_drops_instead_of_crashing():
    with Cluster("fwkv", socket_config()) as cluster:
        from repro.core.wire import HeartbeatBody

        cluster.network.send(0, 99, "Heartbeat", HeartbeatBody(site_vc=(0,)))
        assert cluster.network.stats.drops_by_reason["unknown_dst"] == 1


def test_fault_injection_refuses_on_socket_backend():
    from repro.net import TransportError

    with Cluster("fwkv", socket_config()) as cluster:
        with pytest.raises(TransportError):
            cluster.network.crash(0)
        assert cluster.network.is_crashed(0) is False


# ----------------------------------------------------------------------
# Multi-process cluster (one OS process per node)
# ----------------------------------------------------------------------
def test_multiprocess_cluster_commits_and_passes_oracles():
    summary = launch_cluster(
        "fwkv",
        socket_config(seed=7),
        num_keys=48,
        duration=0.6,
        grace=0.4,
    )
    assert summary["checks"] == "green"
    assert summary["committed"] > 0
    assert summary["exit_codes"] == [0, 0, 0]
    assert summary["history_records"] > 0


def test_multiprocess_cluster_requires_socket_transport():
    with pytest.raises(ValueError):
        launch_cluster("fwkv", ClusterConfig(num_nodes=3))


def test_socket_cluster_script_end_to_end():
    script = Path(__file__).resolve().parents[2] / "scripts" / "socket_cluster.py"
    completed = subprocess.run(
        [
            sys.executable, str(script),
            "--nodes", "3", "--duration", "0.4", "--grace", "0.3",
            "--keys", "32", "--seed", "13",
        ],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    summary = json.loads(completed.stdout)
    assert summary["ok"] is True
    assert summary["checks"] == "green"
    assert summary["committed"] > 0
