"""End-to-end elastic-membership suite: online join/leave under load.

The headline scenarios are the ones ISSUE 6 promised: a node joined
mid-run under live traffic serves reads that pass the PSI checkers with
zero foreground aborts; a decommissioned node's keys stay readable
throughout the drain; and three reconfiguration-chaos pairs -- a join
that rides out a directed partition between old members, a decommission
racing the view coordinator's crash, and a joiner killed mid-bootstrap
that is abandoned and later re-joined under the same id -- each
converging bit-identically to a fault-free control run.

Everything is deterministic: view-change drivers poll on fixed
``membership.ack_timeout`` ticks, healing loops draw from per-node
seeded RNG streams, and ``Simulator.run(until=...)`` lands on exact
deadlines, so a control/faulty pair executes the same transaction plan
on the same virtual-time skeleton and their per-node fingerprints
(store chains, siteVC, coordinator sequence) are comparable bit for
bit.  Scenarios with healing loops step the clock with ``run(until=...)``
and call ``stop_healing()`` before the final run-to-quiescence drain.

Seeds come from ``MEMBERSHIP_SEEDS`` (comma-separated) so CI can sweep
a matrix without editing the file.
"""

import os
from collections import Counter

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    DurabilityConfig,
    HealingConfig,
    NetworkConfig,
    RpcConfig,
)
from repro.faults import Nemesis
from repro.faults.schedules import (
    crash_cycle,
    view_change_partition_schedule,
)
from repro.metrics import check_no_read_skew, find_long_forks
from repro.sim.rng import make_rng

from tests.harness.recovery_tools import node_fingerprint

NUM_NODES = 3
NUM_KEYS = 24
JOINER = NUM_NODES  # the next dense id

#: Anti-entropy gossip period for the convergence scenarios.
AE_INTERVAL = 4e-4
#: Per-commit settle pause: long enough for a commit's full fan-out to
#: drain, keeping per-key install order identical across paired runs.
SETTLE = 1e-3

SEEDS = tuple(
    int(s) for s in os.environ.get("MEMBERSHIP_SEEDS", "7,11").split(",")
)

pytestmark = pytest.mark.membership


def build(seed, *, healing=None, rpc=None, record_history=False):
    """A 3-node FW-KV cluster on the default consistent-hash ring.

    Elastic membership requires the incremental ``add_node`` /
    ``remove_node`` directory, so unlike the healing suite this one
    keeps the :class:`ConsistentHashDirectory` default.
    """
    kwargs = {}
    if healing is not None:
        kwargs["healing"] = healing
    config = ClusterConfig(
        num_nodes=NUM_NODES,
        seed=seed,
        prepared_lease=5e-3,
        gc_enabled=False,
        durability=DurabilityConfig(wal_enabled=False),
        network=NetworkConfig(jitter=5e-6, rpc=rpc or RpcConfig()),
        **kwargs,
    )
    cluster = Cluster("fwkv", config, record_history=record_history)
    for i in range(NUM_KEYS):
        cluster.load(f"k{i}", 0)
    return cluster, Nemesis(cluster)


def all_keys():
    return [f"k{i}" for i in range(NUM_KEYS)]


def keys_at(cluster, node_id):
    return [k for k in all_keys() if cluster.directory.site(k) == node_id]


def rmw_plan(rng, coordinators, count, sample=2):
    keys = all_keys()
    return [
        (coordinators[n % len(coordinators)], rng.sample(keys, sample))
        for n in range(count)
    ]


def spawn_plan(cluster, plan, *, settle=SETTLE):
    """Start ``(coordinator, keys)`` read-modify-write commits running.

    Returns ``(process, outcomes)`` without driving the simulator, so a
    reconfiguration can be launched while the traffic is in flight.
    """
    outcomes = []

    def driver():
        for coordinator, keys in plan:
            node = cluster.node(coordinator)
            txn = node.begin(is_read_only=False)
            values = []
            for key in keys:
                values.append((yield from node.read(txn, key)))
            for key, value in zip(keys, values):
                node.write(txn, key, value + 1)
            ok = yield from node.commit(txn)
            outcomes.append(ok)
            yield cluster.sim.timeout(settle)

    return cluster.spawn(driver(), name="live-traffic"), outcomes


def drive(cluster, plan, *, settle=SETTLE):
    """Run a plan to completion on a stepped clock (healing-loop safe)."""
    process, outcomes = spawn_plan(cluster, plan, settle=settle)
    cluster.run(until=cluster.sim.now + len(plan) * (settle + 1e-3) + 1e-3)
    assert len(outcomes) == len(plan), "plan driver did not finish in time"
    assert all(outcomes), "a planned commit failed"


# ----------------------------------------------------------------------
# Fault-free join: live traffic, zero aborts, PSI-clean reads
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_fault_free_join_under_live_traffic(seed):
    """A node joined mid-run serves reads; no foreground work aborts.

    Traffic keeps committing across the whole reconfiguration window --
    prepares that land on a handoff fence park and retry at the new
    owner, they never abort -- and afterwards the joiner owns real key
    ranges and serves their latest values.
    """
    cluster, _ = build(seed, record_history=True)
    rng = make_rng(seed, "membership-join")
    plan = rmw_plan(rng, range(NUM_NODES), 30)
    traffic, outcomes = spawn_plan(cluster, plan, settle=4e-4)
    cluster.run(until=cluster.sim.now + 2e-3)  # traffic well underway
    joined = cluster.add_node()
    cluster.run()

    assert joined.value is True
    assert len(outcomes) == len(plan) and all(outcomes)
    assert cluster.metrics.aborts == 0, "fault-free join must not abort"

    moved = keys_at(cluster, JOINER)
    assert moved, "the widened ring must hand the joiner some keys"
    expected = Counter(k for _, keys in plan for k in keys)
    seen = {}

    def read_moved(txn):
        for key in moved:
            seen[key] = yield from txn.read(key)

    result = cluster.run_txn(read_moved, node=JOINER, read_only=True)
    assert result.committed
    assert seen == {k: expected[k] for k in moved}

    history = cluster.finalized_history()
    assert check_no_read_skew(history).ok
    assert find_long_forks(history) == []

    # Propagation fan-out through the committed view converges every
    # member -- the joiner included -- on the same frontier.
    assert len({n.site_vc.to_tuple() for n in cluster.nodes}) == 1
    assert cluster.metrics.joins_bootstrapped == 1
    assert cluster.metrics.views_committed >= 2  # JOINING, then ACTIVE


# ----------------------------------------------------------------------
# Fault-free decommission: keys stay readable throughout the drain
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_fault_free_decommission_keys_stay_readable(seed):
    cluster, _ = build(seed)
    rng = make_rng(seed, "membership-leave")
    plan_a = rmw_plan(rng, range(NUM_NODES), 12)
    drive(cluster, plan_a)
    counts = Counter(k for _, keys in plan_a for k in keys)

    victim = max(range(NUM_NODES), key=lambda n: len(keys_at(cluster, n)))
    victim_keys = keys_at(cluster, victim)
    assert victim_keys, "the keyspace must place keys at the victim"
    observer = cluster.node((victim + 1) % NUM_NODES)

    left = cluster.remove_node(victim)
    reads = []

    def reader():
        # Poll the victim's keys across the whole drain: every read
        # must commit, and the values must stay monotone.
        while not left.triggered:
            txn = observer.begin(is_read_only=True)
            values = []
            for key in victim_keys:
                values.append((yield from observer.read(txn, key)))
            ok = yield from observer.commit(txn)
            reads.append((ok, values))
            yield cluster.sim.timeout(2e-4)

    def writer():
        # One write into the drain window: it parks on the fence, votes
        # "moved" once the directory flips, and commits at the new
        # owner -- never aborts.
        yield cluster.sim.timeout(2.5e-3)
        node = cluster.node((victim + 1) % NUM_NODES)
        txn = node.begin(is_read_only=False)
        value = yield from node.read(txn, victim_keys[0])
        node.write(txn, victim_keys[0], value + 1)
        ok = yield from node.commit(txn)
        reads.append(("writer", [ok]))

    cluster.spawn(reader(), name="drain-reader")
    cluster.spawn(writer(), name="drain-writer")
    cluster.run()

    assert left.value is True
    assert cluster.metrics.aborts == 0, "fault-free drain must not abort"
    writer_rows = [row for row in reads if row[0] == "writer"]
    assert writer_rows == [("writer", [True])]
    observed = [row for row in reads if row[0] != "writer"]
    assert observed, "the reader never ran during the drain"
    want = [counts[k] for k in victim_keys]
    bumped = [
        counts[k] + (1 if k == victim_keys[0] else 0) for k in victim_keys
    ]
    previous = None
    for ok, values in observed:
        assert ok, "a read during the drain aborted"
        assert values in (want, bumped) or all(
            w <= v <= b for v, w, b in zip(values, want, bumped)
        )
        if previous is not None:
            assert all(v >= p for v, p in zip(values, previous))
        previous = values

    # Ownership moved off the victim and the data moved with it.
    assert all(cluster.directory.site(k) != victim for k in victim_keys)
    for key in victim_keys:
        assert key in cluster.node(cluster.directory.site(key)).store.keys()
    assert cluster.metrics.drains_completed == 1


# ----------------------------------------------------------------------
# Chaos pair 1: join rides out a directed partition between old members
# ----------------------------------------------------------------------
def run_partitioned_join(seed, *, partition):
    """Join while the proposer is cut off from a peer, or the control.

    The partition window (5 ms) is shorter than the view driver's retry
    budget (``max_attempts * ack_timeout`` = 10 ms), so the JOINING
    proposal fails its first rounds and succeeds after the heal -- the
    join completes in both runs and must converge identically.
    """
    healing = HealingConfig(
        anti_entropy_interval=AE_INTERVAL, digest_timeout=5e-4
    )
    cluster, nemesis = build(seed, healing=healing)
    rng = make_rng(seed, "membership-partition")
    drive(cluster, rmw_plan(rng, range(NUM_NODES), 12))
    cluster.start_healing()
    t0 = cluster.sim.now
    if partition:
        nemesis.start(view_change_partition_schedule(1, [0], t0, 5e-3))
    joined = cluster.add_node()
    cluster.run(until=t0 + 40e-3)
    assert joined.triggered, "join driver did not finish in its window"
    assert joined.value is True

    drive(cluster, rmw_plan(rng, range(NUM_NODES + 1), 8))
    cluster.run(until=cluster.sim.now + 10 * AE_INTERVAL)
    cluster.stop_healing()
    cluster.run()
    return {
        "fingerprints": [node_fingerprint(n) for n in cluster.nodes],
        "clocks": {n.site_vc.to_tuple() for n in cluster.nodes},
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_join_during_directed_partition_converges(seed):
    faulty = run_partitioned_join(seed, partition=True)
    control = run_partitioned_join(seed, partition=False)
    assert len(faulty["clocks"]) == 1
    assert faulty["fingerprints"] == control["fingerprints"]


# ----------------------------------------------------------------------
# Chaos pair 2: decommission racing the view coordinator's crash
# ----------------------------------------------------------------------
def run_decommission_coordinator_crash(seed, *, crash):
    """Decommission while the would-be view coordinator is down.

    Node 0 -- the lowest ACTIVE member, hence the default proposer --
    is crashed when the DRAINING view is first driven, so the driver
    routes the proposal through node 1; node 0 restarts inside the ack
    window, joins the retry round, and re-learns the views from the
    commit fan-out.  The control run executes the same timeline with
    node 0 up throughout.
    """
    healing = HealingConfig(
        anti_entropy_interval=AE_INTERVAL, digest_timeout=5e-4
    )
    cluster, nemesis = build(seed, healing=healing)
    rng = make_rng(seed, "membership-crash")
    drive(cluster, rmw_plan(rng, range(NUM_NODES), 12))
    cluster.start_healing()
    victim = NUM_NODES - 1
    victim_keys = keys_at(cluster, victim)
    assert victim_keys, "the keyspace must place keys at the victim"
    t0 = cluster.sim.now
    if crash:
        nemesis.start(crash_cycle(0, t0, 1.5e-3))
    cluster.run(until=t0 + 2e-4)  # the crash lands before the proposal
    left = cluster.remove_node(victim)
    cluster.run(until=t0 + 40e-3)
    assert left.triggered, "leave driver did not finish in its window"
    assert left.value is True

    survivors = [n for n in range(NUM_NODES) if n != victim]
    drive(cluster, rmw_plan(rng, survivors, 8))
    cluster.run(until=cluster.sim.now + 10 * AE_INTERVAL)
    cluster.stop_healing()
    cluster.run()
    for key in victim_keys:
        assert cluster.directory.site(key) != victim
    return {
        "fingerprints": [node_fingerprint(n) for n in cluster.nodes],
        "clocks": {
            cluster.node(s).site_vc.to_tuple() for s in survivors
        },
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_decommission_racing_coordinator_crash_converges(seed):
    faulty = run_decommission_coordinator_crash(seed, crash=True)
    control = run_decommission_coordinator_crash(seed, crash=False)
    assert len(faulty["clocks"]) == 1
    assert faulty["fingerprints"] == control["fingerprints"]


# ----------------------------------------------------------------------
# Chaos pair 3: joiner killed mid-bootstrap, abandoned, re-joined
# ----------------------------------------------------------------------
def run_join_crash_rejoin(seed, *, crash):
    """Kill the joiner mid-bootstrap, then re-join it under the same id.

    The driver abandons the first join (process value False, a
    member-removal view, no directory flip); after the restart the same
    id is re-added and must end bit-identical to a control that only
    ever performed the second, clean join on the same timeline.
    """
    rpc = RpcConfig(request_timeout=1.5e-3, max_attempts=3)
    cluster, nemesis = build(seed, rpc=rpc)
    rng = make_rng(seed, "membership-rejoin")
    drive(cluster, rmw_plan(rng, range(NUM_NODES), 12))
    t0 = cluster.sim.now
    if crash:
        # The join driver commits the JOINING view at ~2 ms, detects the
        # joiner's apply on its next 2 ms poll, and runs the bootstrap
        # worker (frontier collection + shard handoff) from ~4.0 ms; the
        # crash lands inside that window, mid-handoff, so the in-flight
        # shard stream settles against a dead peer and the driver must
        # abandon.
        nemesis.start(crash_cycle(JOINER, t0 + 4.15e-3, 15.85e-3))
        first = cluster.add_node()
        cluster.run(until=t0 + 22e-3)
        assert first.triggered, "abandonment did not finish in its window"
        assert first.value is False
        assert all(
            cluster.directory.site(k) != JOINER for k in all_keys()
        ), "an abandoned joiner must not keep ownership"
    else:
        cluster.run(until=t0 + 22e-3)
    second = cluster.add_node(JOINER)
    cluster.run(until=t0 + 40e-3)
    assert second.triggered, "join driver did not finish in its window"
    assert second.value is True

    drive(cluster, rmw_plan(rng, range(NUM_NODES + 1), 8))
    cluster.run()
    return {
        "fingerprints": [node_fingerprint(n) for n in cluster.nodes],
        "clocks": {n.site_vc.to_tuple() for n in cluster.nodes},
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_joiner_killed_mid_bootstrap_then_rejoined(seed):
    faulty = run_join_crash_rejoin(seed, crash=True)
    control = run_join_crash_rejoin(seed, crash=False)
    assert len(faulty["clocks"]) == 1
    assert faulty["fingerprints"] == control["fingerprints"]


def test_reconfiguration_is_deterministic():
    """The most eventful scenario replays bit-identically."""
    seed = SEEDS[0]
    once = run_join_crash_rejoin(seed, crash=True)
    twice = run_join_crash_rejoin(seed, crash=True)
    assert once["fingerprints"] == twice["fingerprints"]


# ----------------------------------------------------------------------
# Observability: counters and trace kinds
# ----------------------------------------------------------------------
def test_membership_counters_and_traces_surface():
    """The membership counters exist under stable summary() names and
    the reconfiguration trace kinds are emitted."""
    cluster, _ = build(SEEDS[0])
    cluster.tracer.enable(
        "join_bootstrap", "join_complete", "join_abandoned",
        "drain_complete", "shard_offer", "shard_shipped",
    )
    drive(cluster, [(0, ["k0", "k1"]), (1, ["k2", "k3"])])
    joined = cluster.add_node()
    cluster.run()
    left = cluster.remove_node(1)
    cluster.run()
    assert joined.value is True and left.value is True

    summary = cluster.metrics.summary()
    for name in (
        "views_committed",
        "joins_bootstrapped",
        "drains_completed",
        "stale_width_messages",
    ):
        assert name in summary, f"{name} missing from metrics summary"
    assert summary["views_committed"] >= 4  # JOINING/ACTIVE + DRAINING/removal
    assert summary["joins_bootstrapped"] == 1
    assert summary["drains_completed"] == 1

    assert cluster.tracer.of_kind("join_bootstrap")
    assert cluster.tracer.of_kind("join_complete")
    assert cluster.tracer.of_kind("drain_complete")
    assert cluster.tracer.of_kind("shard_shipped")
    assert cluster.tracer.of_kind("join_abandoned") == []
