"""Edge-case tests for the shared MVCC machinery (prepare/decide/propagate)."""

import pytest

from repro.net.message import MessageType
from tests.integration.scenario_tools import (
    make_cluster,
    read_only_txn,
    retry_update,
    update_txn,
)


def test_lock_timeout_aborts_prepare():
    """A prepare that cannot lock within the timeout votes no."""
    cluster = make_cluster("fwkv", 2, {"x": 1}, initial={"x": 0})
    outcome = {}
    lock_acquired = cluster.sim.event()

    def holder():
        # Take the write lock directly and sit on it past the timeout.
        node = cluster.node(1)
        granted = yield node.locks.lock_for("x").acquire_write("intruder")
        assert granted
        lock_acquired.succeed()
        yield cluster.sim.timeout(5e-3)
        node.locks.lock_for("x").release("intruder")

    def txn():
        yield lock_acquired
        node = cluster.node(0)
        t = node.begin(is_read_only=False)
        node.write(t, "x", 42)
        outcome["ok"] = yield from node.commit(t)

    cluster.spawn(holder())
    cluster.spawn(txn())
    cluster.run()
    assert outcome["ok"] is False
    assert cluster.metrics.aborts_by_reason.get("lock_timeout", 0) == 1
    # After the holder releases, a retry succeeds.
    cluster.run_process(retry_update(cluster, 0, writes={"x": 42}))
    assert cluster.node(1).store.chain("x").latest.value == 42


def test_in_order_decide_application():
    """Commits from one origin apply in sequence-number order even when a
    middle transaction's Propagate is the only carrier of its seq."""
    placement = {"a": 1, "b": 1, "c": 0}
    cluster = make_cluster("fwkv", 2, placement, propagate_delay=2e-3)

    def writer():
        # Txn 1 from node 0 writes a key on node 1 (Decide to node 1).
        ok, _ = yield from update_txn(cluster, 0, writes={"a": 1})
        assert ok
        # Txn 2 from node 0 writes only local key c (node 1 gets Propagate,
        # delayed 2ms).
        ok, _ = yield from update_txn(cluster, 0, writes={"c": 2})
        assert ok
        # Txn 3 from node 0 writes on node 1 again: its Decide must wait at
        # node 1 for txn 2's delayed Propagate.
        ok, _ = yield from update_txn(cluster, 0, writes={"b": 3})
        assert ok

    cluster.spawn(writer())
    cluster.run(until=1.5e-3)
    node1 = cluster.node(1)
    # Txn 3 decided, but cannot apply before txn 2's Propagate arrives.
    assert node1.site_vc[0] == 1
    assert node1.store.chain("b").latest.value == 0
    cluster.run()
    assert node1.site_vc[0] == 3
    assert node1.store.chain("b").latest.value == 3


def test_propagate_is_idempotent_and_ordered():
    cluster = make_cluster("walter", 3, {"x": 0}, initial={"x": 0})
    cluster.run_process(update_txn(cluster, 0, writes={"x": 1}))
    node2 = cluster.node(2)
    assert node2.site_vc[0] == 1
    # A duplicate propagate for an already-applied seq is a no-op.
    from repro.core.wire import PropagateBody

    cluster.node(0).node.send(2, MessageType.PROPAGATE, PropagateBody(0, 1))
    cluster.run()
    assert node2.site_vc[0] == 1


def test_read_stall_released_by_catchup():
    """A read whose snapshot outruns the serving node waits, then serves."""
    placement = {"x": 1, "y": 0}
    cluster = make_cluster("fwkv", 3, placement, propagate_delay=3e-3,
                           initial={"x": "x0", "y": "y0"})
    result = {}

    def writer():
        # Node 0 commits y1 (node 0 is preferred site); node 1 learns of it
        # only via the delayed Propagate.
        ok, _ = yield from update_txn(cluster, 0, writes={"y": "y1"})
        assert ok

    def reader():
        yield cluster.sim.timeout(0.5e-3)
        node = cluster.node(0)  # begins at node 0: snapshot includes y1
        txn = node.begin(is_read_only=True)
        value = yield from node.read(txn, "x")  # served by lagging node 1
        result["x"] = value
        result["at"] = cluster.sim.now
        yield from node.commit(txn)

    cluster.spawn(writer())
    cluster.spawn(reader())
    cluster.run()
    assert result["x"] == "x0"
    # The read stalled until node 1 received the delayed Propagate (~3ms).
    assert result["at"] >= 3e-3
    assert cluster.metrics.read_stalls >= 1


def test_empty_writeset_update_commits_as_read_only():
    """Alg. 4 line 2 keys on the writeset, not the declared mode."""
    cluster = make_cluster("fwkv", 2, {"x": 1}, initial={"x": 5})

    def txn():
        node = cluster.node(0)
        t = node.begin(is_read_only=False)
        value = yield from node.read(t, "x")
        ok = yield from node.commit(t)
        return value, ok, t.seq_no

    value, ok, seq_no = cluster.run_process(txn())
    assert (value, ok) == (5, True)
    assert seq_no is None, "no sequence number consumed without writes"
    assert cluster.node(0).curr_seq_no == 0


def test_aborted_transactions_consume_no_sequence_numbers():
    cluster = make_cluster("walter", 2, {"x": 1}, initial={"x": 0})
    read_done = cluster.sim.event()
    winner_done = cluster.sim.event()

    def loser():
        node = cluster.node(0)
        t = node.begin(is_read_only=False)
        _ = yield from node.read(t, "x")
        node.write(t, "x", "loser")
        read_done.succeed()
        yield winner_done
        ok = yield from node.commit(t)
        assert not ok

    def winner():
        yield read_done
        ok, _ = yield from update_txn(cluster, 1, writes={"x": "winner"})
        assert ok
        winner_done.succeed()

    cluster.spawn(loser())
    cluster.spawn(winner())
    cluster.run()
    assert cluster.node(0).curr_seq_no == 0, "aborts must not consume seqs"
    assert cluster.node(1).curr_seq_no == 1
    # Every node converges on the winner's commit.
    assert cluster.site_clocks() == [(0, 1), (0, 1)]
