"""Deterministic crash-recovery suite: durable-state loss and rebuild.

Every scenario here crashes a node at a *protocol-chosen* point -- not a
wall-clock guess -- using trace listeners (``tests.harness.recovery_tools``),
wipes its volatile state (store, ``siteVC``, prepared table), restarts
it, and checks that WAL replay + in-doubt termination + anti-entropy
catch-up rebuild exactly the state the rest of the cluster may have
observed:

* crash between the coordinator's Decide/Propagate fan-out and the
  victim's Propagate apply -- the headline scenario: after recovery and
  200+ further transactions the merged pre/post-crash history is still
  PSI, and the victim's durable state is bit-identical to a
  never-crashed control run at the same point;
* crash mid-prepare (vote lost) -- the transaction aborts everywhere and
  recovery terminates the in-doubt leftover as aborted;
* crash mid-Propagate-apply -- catch-up repairs the lost clock advances;
* crash with an in-flight Decide (prepared + committed elsewhere) -- the
  recovery termination query closes the presumed-abort window and the
  committed writes reappear at the victim.

Seeds come from ``RECOVERY_SEEDS`` (comma-separated) so CI can sweep a
matrix without editing the file.
"""

import os

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    DurabilityConfig,
    NetworkConfig,
    RpcConfig,
)
from repro.cluster import ModuloDirectory
from repro.faults import Nemesis
from repro.metrics import check_no_read_skew, check_site_order
from repro.net.rpc import RpcTimeoutError
from repro.sim.rng import make_rng

from tests.harness.recovery_tools import (
    assert_no_lost_commits,
    crash_at,
    node_fingerprint,
    restart,
)

NUM_NODES = 4
NUM_KEYS = 16
VICTIM = 2
#: Transactions driven concurrently after recovery (the "keep going"
#: phase of the headline scenario): 4 nodes x 2 clients x 40 txns.
POST_CLIENTS = 2
POST_TXNS = 40

SEEDS = tuple(
    int(s) for s in os.environ.get("RECOVERY_SEEDS", "41,42").split(",")
)
PROTOCOLS = ("fwkv", "walter")

pytestmark = pytest.mark.recovery


def build(protocol, seed, *, termination=True):
    config = ClusterConfig(
        num_nodes=NUM_NODES,
        seed=seed,
        prepared_lease=5e-3,
        # Every version must survive the run so assert_no_lost_commits
        # can find each acknowledged write by its writer-txn stamp.
        gc_enabled=False,
        durability=DurabilityConfig(
            wal_enabled=True, termination_query=termination
        ),
        network=NetworkConfig(
            jitter=5e-6,
            rpc=RpcConfig(request_timeout=1.5e-3, max_attempts=3),
        ),
    )
    cluster = Cluster(
        protocol, config, directory=ModuloDirectory(NUM_NODES),
        record_history=True,
    )
    for i in range(NUM_KEYS):
        cluster.load(f"k{i}", 0)
    return cluster, Nemesis(cluster)


def keys_by_site(cluster):
    sites = {}
    for i in range(NUM_KEYS):
        key = f"k{i}"
        sites.setdefault(cluster.directory.site(key), []).append(key)
    return sites


def run_txn(cluster, coordinator, keys, *, attempts=8):
    """Drive one read-modify-write transaction to quiescence.

    Returns ``(ok, txn)`` -- the transaction object is needed even on
    failure so tests can assert its writes exist nowhere.
    """
    node = cluster.node(coordinator)

    def process():
        last = None
        for _ in range(attempts):
            txn = node.begin(is_read_only=False)
            last = txn
            try:
                values = []
                for key in keys:
                    values.append((yield from node.read(txn, key)))
                for key, value in zip(keys, values):
                    node.write(txn, key, value + 1)
                ok = yield from node.commit(txn)
            except RpcTimeoutError:
                node.abort(txn)
                ok = False
            if ok:
                return True, txn
            yield cluster.sim.timeout(100e-6)
        return False, last

    return cluster.run_process(process())


def post_recovery_client(cluster, node_id, client_id, seed, committed):
    """A concurrent closed-loop client recording acknowledged writes."""
    rng = make_rng(seed, "recovery-client", node_id, client_id)
    node = cluster.node(node_id)
    keys = [f"k{i}" for i in range(NUM_KEYS)]
    for _ in range(POST_TXNS):
        chosen = rng.sample(keys, 2)
        read_only = rng.random() < 0.3
        for _attempt in range(6):
            txn = node.begin(is_read_only=read_only)
            try:
                values = []
                for key in chosen:
                    values.append((yield from node.read(txn, key)))
                if not read_only:
                    for key, value in zip(chosen, values):
                        node.write(txn, key, value + 1)
                ok = yield from node.commit(txn)
            except RpcTimeoutError:
                node.abort(txn)
                ok = False
            if ok:
                if not read_only:
                    committed[txn.txn_id] = list(chosen)
                break
            yield cluster.sim.timeout(rng.uniform(50e-6, 250e-6))
        yield cluster.sim.timeout(rng.uniform(0, 100e-6))


def assert_psi(cluster):
    history = cluster.finalized_history()
    skew = check_no_read_skew(history)
    assert skew.ok, skew.violations[:3]
    order = check_site_order(history, cluster.version_catalog())
    assert order.ok, order.violations[:3]
    return history


class ScenarioResult:
    def __init__(self, **kw):
        self.__dict__.update(kw)


def run_decide_propagate_scenario(protocol, seed, *, crash):
    """The headline scenario, with or without the crash.

    Phases A/B are driven *sequentially* so the committed transaction
    sequence is identical with and without the fault -- that is what
    makes the recovered node's durable state comparable bit-for-bit
    against the never-crashed control at the post-recovery barrier.
    """
    cluster, nemesis = build(protocol, seed)
    rng = make_rng(seed, "recovery-scenario")
    all_keys = [f"k{i}" for i in range(NUM_KEYS)]
    victim_keys = set(keys_by_site(cluster).get(VICTIM, []))
    other_keys = sorted(set(all_keys) - victim_keys)
    assert victim_keys, "seed keyspace must place keys at the victim"
    committed = {}

    # Phase A: writes everywhere, victim included, so replay has real
    # version chains (not just clock records) to rebuild.
    for n in range(20):
        ok, txn = run_txn(cluster, n % NUM_NODES, rng.sample(all_keys, 2))
        assert ok
        committed[txn.txn_id] = list(txn.writeset)

    # The crash transaction: coordinator 0, victim uninvolved.  The
    # listener fires at coordinator 0's "commit" emit -- *after* its
    # Decide/Propagate fan-out left, *before* the victim's Propagate
    # delivers -- so the crash destroys exactly that in-flight advance.
    point = None
    if crash:
        point = crash_at(cluster, nemesis, VICTIM, "commit", node=0)
    crash_keys = other_keys[:2]
    ok, crash_txn = run_txn(cluster, 0, crash_keys)
    assert ok
    committed[crash_txn.txn_id] = list(crash_keys)
    expected_lost = {0: [crash_txn.seq_no]} if crash else {}
    if point is not None:
        assert point.fired

    # Phase B (the down window): traffic that avoids the victim entirely,
    # so the only victim-bound messages are the Propagates it is missing.
    for n in range(8):
        coordinator = (0, 1, 3)[n % 3]
        ok, txn = run_txn(cluster, coordinator, rng.sample(other_keys, 2))
        assert ok
        committed[txn.txn_id] = list(txn.writeset)
        if crash:
            expected_lost.setdefault(coordinator, []).append(txn.seq_no)

    window = None
    if crash:
        window = restart(cluster, nemesis, VICTIM)
        cluster.run()  # drain WAL replay + termination + catch-up

    fingerprint = node_fingerprint(cluster.nodes[VICTIM])

    # Phase C: 200+ further concurrent transactions over the full
    # keyspace; the merged pre/post-crash history must still be PSI.
    for node_id in range(NUM_NODES):
        for client_id in range(POST_CLIENTS):
            cluster.spawn(
                post_recovery_client(
                    cluster, node_id, client_id, seed, committed
                ),
                name=f"post-client-{node_id}-{client_id}",
            )
    cluster.run()

    return ScenarioResult(
        cluster=cluster,
        nemesis=nemesis,
        window=window,
        fingerprint=fingerprint,
        expected_lost={k: sorted(v) for k, v in expected_lost.items()},
        committed=committed,
    )


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("seed", SEEDS)
def test_crash_between_decide_and_propagate(protocol, seed):
    crashed = run_decide_propagate_scenario(protocol, seed, crash=True)
    control = run_decide_propagate_scenario(protocol, seed, crash=False)

    # Bit-identical rebuild: store chains (vids included), siteVC, and
    # the coordinator sequence counter all match the never-crashed
    # control at the post-recovery barrier.
    assert crashed.fingerprint == control.fingerprint

    victim = crashed.cluster.nodes[VICTIM]
    assert victim.recoveries == 1
    assert crashed.cluster.metrics.recoveries == 1
    assert crashed.nemesis.restart_count == 1

    # The down-window accounting names exactly the Propagates destroyed,
    # and anti-entropy advanced the clock exactly that many slots.
    window = crashed.window
    assert window.closed
    assert dict(window.lost_propagates) == crashed.expected_lost
    total_lost = sum(len(v) for v in crashed.expected_lost.values())
    assert crashed.cluster.metrics.catchup_advances == total_lost
    assert set(window.drops_by_reason) == {"crash"}

    # 200+ transactions later, the merged history is still PSI and no
    # acknowledged write is missing anywhere.
    history = assert_psi(crashed.cluster)
    assert len(history.committed_updates()) >= 200
    assert_no_lost_commits(crashed.cluster, crashed.committed)
    assert not crashed.cluster.any_locks_held()
    clocks = crashed.cluster.site_clocks()
    assert all(clock == clocks[0] for clock in clocks)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_crash_mid_prepare_aborts_and_recovers(protocol):
    """A participant crashing between staging and voting leaves an
    in-doubt prepare whose recovery termination resolves *aborted*."""
    cluster, nemesis = build(protocol, SEEDS[0])
    sites = keys_by_site(cluster)
    rng = make_rng(SEEDS[0], "mid-prepare")
    all_keys = [f"k{i}" for i in range(NUM_KEYS)]
    for n in range(8):
        ok, _ = run_txn(cluster, n % NUM_NODES, rng.sample(all_keys, 2))
        assert ok

    point = crash_at(cluster, nemesis, VICTIM, "prepare", node=VICTIM)
    keys = [sites[0][0], sites[VICTIM][0]]
    ok, doomed = run_txn(cluster, 0, keys, attempts=1)
    assert point.fired
    assert not ok  # the vote never reached the coordinator

    window = restart(cluster, nemesis, VICTIM)
    cluster.run()

    victim = cluster.nodes[VICTIM]
    assert victim.recoveries == 1
    assert cluster.metrics.indoubt_recovered >= 1
    assert cluster.metrics.indoubt_aborted >= 1
    # The aborted transaction's writes exist nowhere.
    for node in cluster.nodes:
        for key in keys:
            if key in node.store:
                chain = node.store.chain(key)
                assert not any(v.writer_txn == doomed.txn_id for v in chain)
    assert not cluster.any_locks_held()
    assert window.closed

    # The keys are usable again: locks were rebuilt and then released.
    ok, _ = run_txn(cluster, 1, keys)
    assert ok
    assert_psi(cluster)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_crash_mid_propagate_apply(protocol):
    """Crashing at the victim's own Propagate apply point loses the
    following advances; catch-up repairs them after restart."""
    cluster, nemesis = build(protocol, SEEDS[0])
    rng = make_rng(SEEDS[0], "mid-propagate")
    all_keys = [f"k{i}" for i in range(NUM_KEYS)]
    victim_keys = set(keys_by_site(cluster).get(VICTIM, []))
    other_keys = sorted(set(all_keys) - victim_keys)
    for n in range(8):
        ok, _ = run_txn(cluster, n % NUM_NODES, rng.sample(all_keys, 2))
        assert ok

    point = crash_at(cluster, nemesis, VICTIM, "propagate", node=VICTIM)
    ok, _ = run_txn(cluster, 0, other_keys[:2])
    assert ok
    assert point.fired  # victim applied the advance, then died

    for n in range(5):
        ok, _ = run_txn(cluster, (0, 1, 3)[n % 3], rng.sample(other_keys, 2))
        assert ok

    window = restart(cluster, nemesis, VICTIM)
    cluster.run()

    victim = cluster.nodes[VICTIM]
    assert victim.recoveries == 1
    assert sum(len(v) for v in window.lost_propagates.values()) == 5
    assert cluster.metrics.catchup_advances == 5
    clocks = cluster.site_clocks()
    assert all(clock == clocks[0] for clock in clocks)
    assert_psi(cluster)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_crash_with_inflight_decide_recovers_commit(protocol):
    """The presumed-abort window, closed: a participant that crashed
    with the Decide in flight recovers the *committed* outcome via the
    termination query and reinstalls the writes it never applied."""
    cluster, nemesis = build(protocol, SEEDS[0])
    sites = keys_by_site(cluster)
    rng = make_rng(SEEDS[0], "indoubt-commit")
    all_keys = [f"k{i}" for i in range(NUM_KEYS)]
    for n in range(8):
        ok, _ = run_txn(cluster, n % NUM_NODES, rng.sample(all_keys, 2))
        assert ok

    # Coordinator 0 commits across sites {0, victim}; the listener fires
    # at the coordinator's "commit" emit, when the victim's Decide has
    # been sent but not delivered.  The client sees ok=True.
    point = crash_at(cluster, nemesis, VICTIM, "commit", node=0)
    keys = [sites[0][0], sites[VICTIM][0]]
    ok, txn = run_txn(cluster, 0, keys, attempts=1)
    assert ok and point.fired

    victim = cluster.nodes[VICTIM]
    victim_key = keys[1]
    # The crash destroyed the Decide: the write is not at the victim.
    assert not any(
        v.writer_txn == txn.txn_id for v in victim.store.chain(victim_key)
    )

    window = restart(cluster, nemesis, VICTIM)
    cluster.run()

    assert victim.recoveries == 1
    assert cluster.metrics.indoubt_committed >= 1
    # The committed write reappeared, with its origin stamp intact.
    recovered = [
        v for v in victim.store.chain(victim_key)
        if v.writer_txn == txn.txn_id
    ]
    assert len(recovered) == 1
    assert recovered[0].origin == 0 and recovered[0].seq == txn.seq_no
    assert not cluster.any_locks_held()
    assert window.closed
    clocks = cluster.site_clocks()
    assert all(clock == clocks[0] for clock in clocks)
    assert_psi(cluster)


def test_down_window_accounting_is_exact():
    """Per-reason drop counters and lost Propagate seq_nos, exactly."""
    cluster, nemesis = build("fwkv", SEEDS[0])
    rng = make_rng(SEEDS[0], "accounting")
    all_keys = [f"k{i}" for i in range(NUM_KEYS)]
    victim_keys = set(keys_by_site(cluster).get(VICTIM, []))
    other_keys = sorted(set(all_keys) - victim_keys)
    for n in range(4):
        ok, _ = run_txn(cluster, n % NUM_NODES, rng.sample(all_keys, 2))
        assert ok

    from repro.faults.schedules import CRASH_DURABLE, FaultEvent

    # Crash at a quiescent instant: nothing is in flight, so the window
    # contains *only* the three Propagates committed while it was open.
    nemesis.apply(FaultEvent(cluster.sim.now, CRASH_DURABLE, VICTIM))
    expected = []
    for _ in range(3):
        ok, txn = run_txn(cluster, 0, rng.sample(other_keys, 2))
        assert ok
        expected.append(txn.seq_no)

    window = restart(cluster, nemesis, VICTIM)
    cluster.run()

    assert dict(window.drops_by_reason) == {"crash": 3}
    assert dict(window.lost_propagates) == {0: sorted(expected)}
    assert nemesis.restart_count == 1
    assert nemesis.down_windows == [window]
    assert cluster.nodes[VICTIM].recoveries == 1
