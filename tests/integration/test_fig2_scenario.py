"""Figure 2: a read-only transaction advances its snapshot yet reads
consistently thanks to the version-access-set.

Keys ``x`` and ``y`` live on node 1.  Read-only T1 (node 0) reads ``x``
first (latest version, registering in the VAS).  Update T3 (node 2) then
overwrites both ``x`` and ``y``; its commit propagates T1's identifier into
the new versions.  When T1 later reads ``y``, the VAS exclusion forces the
old ``y0`` -- the anti-dependency with T3 is respected -- even though the
new ``y1`` is within T1's vector-clock bound.  After T1 commits, Remove
messages erase its VAS entries everywhere.
"""

from repro.metrics import check_no_read_skew, check_site_order
from tests.integration.scenario_tools import make_cluster, update_txn

PLACEMENT = {"x": 1, "y": 1}
INITIAL = {"x": "x0", "y": "y0"}


def run_scenario():
    cluster = make_cluster("fwkv", 3, PLACEMENT, initial=INITIAL)
    sync = {"x_read": cluster.sim.event(), "t3_done": cluster.sim.event()}
    result = {}

    def t1():
        node = cluster.node(0)
        txn = node.begin(is_read_only=True)
        result["x"] = yield from node.read(txn, "x")
        sync["x_read"].succeed()
        yield sync["t3_done"]
        yield cluster.sim.timeout(200e-6)  # let T3's Decide apply at node 1
        chain = cluster.node(1).store.chain("y")
        result["y_latest_before_read"] = chain.latest.value
        result["y1_vas"] = set(chain.latest.access_set)
        result["y"] = yield from node.read(txn, "y")
        ok = yield from node.commit(txn)
        result["t1_committed"] = ok
        result["t1_id"] = txn.txn_id

    def t3():
        yield sync["x_read"]
        ok, _ = yield from update_txn(
            cluster, 2, writes={"x": "x1", "y": "y1"}
        )
        result["t3_ok"] = ok
        sync["t3_done"].succeed()

    cluster.spawn(t1())
    cluster.spawn(t3())
    cluster.run()
    return cluster, result


def test_t1_reads_latest_x_then_consistent_old_y():
    cluster, result = run_scenario()
    assert result["t3_ok"]
    assert result["x"] == "x0", "x0 was the latest at T1's first read"
    assert result["y_latest_before_read"] == "y1", "y1 committed before the read"
    assert result["y"] == "y0", "VAS exclusion must hide y1 from T1"
    assert result["t1_committed"]


def test_t3_commit_propagates_t1_into_new_versions():
    cluster, result = run_scenario()
    assert result["t1_id"] in result["y1_vas"], (
        "T3's commit must propagate T1's id into the versions it installs"
    )


def test_remove_cleans_all_vas_entries():
    cluster, _result = run_scenario()
    assert cluster.total_vas_entries() == 0
    assert not cluster.any_locks_held()


def test_history_is_psi_consistent():
    cluster, _result = run_scenario()
    history = cluster.finalized_history()
    assert check_no_read_skew(history)
    assert check_site_order(history, cluster.version_catalog())
