"""Figure 3: how an *update* transaction establishes its safe snapshot.

Update T1 (node 0) reads ``x`` from node 1 -- its first read, so it sees
the latest version and advances ``T.VC`` to node 1's clock.  Update T3
(node 2) then commits new versions of both ``x`` and ``y`` on node 1.
T1's second read (``y``) applies the conservative exclusion rule: ``y1``'s
clock equals T1's bound at the read site but is newer at T3's (unread)
site, so it may stem from a concurrent conflicting transaction and must be
skipped -- T1 reads ``y0``.  T1 then writes ``z`` (no conflict) and
commits.
"""

from repro.metrics import check_no_read_skew
from tests.integration.scenario_tools import make_cluster, update_txn

PLACEMENT = {"x": 1, "y": 1, "z": 0}
INITIAL = {"x": "x0", "y": "y0", "z": "z0"}


def run_scenario():
    cluster = make_cluster("fwkv", 3, PLACEMENT, initial=INITIAL)
    sync = {"x_read": cluster.sim.event(), "t3_done": cluster.sim.event()}
    result = {}

    def t1():
        node = cluster.node(0)
        txn = node.begin(is_read_only=False)
        result["x"] = yield from node.read(txn, "x")
        result["t1_vc_after_x"] = txn.vc.to_tuple()
        sync["x_read"].succeed()
        yield sync["t3_done"]
        yield cluster.sim.timeout(200e-6)  # T3's Decide applies at node 1
        result["y_latest"] = cluster.node(1).store.chain("y").latest.value
        result["y"] = yield from node.read(txn, "y")
        node.write(txn, "z", "z1")
        result["t1_committed"] = yield from node.commit(txn)

    def t3():
        yield sync["x_read"]
        ok, _ = yield from update_txn(cluster, 2, writes={"x": "x1", "y": "y1"})
        result["t3_ok"] = ok
        sync["t3_done"].succeed()

    cluster.spawn(t1())
    cluster.spawn(t3())
    cluster.run()
    return cluster, result


def test_update_reads_safe_old_y_after_concurrent_commit():
    cluster, result = run_scenario()
    assert result["t3_ok"]
    assert result["x"] == "x0"
    assert result["y_latest"] == "y1", "y1 was committed before T1's read"
    assert result["y"] == "y0", (
        "the conservative rule must exclude y1 (possible concurrent conflict)"
    )
    assert result["t1_committed"], "writing z conflicts with nobody"


def test_first_read_advances_snapshot_to_node_clock():
    _cluster, result = run_scenario()
    # After reading x at node 1, T1's VC reflects node 1's clock (all zero
    # here since nothing had committed yet -- the point is it matched the
    # node's siteVC at read time, shown non-trivially in fig4 tests).
    assert len(result["t1_vc_after_x"]) == 3


def test_history_has_no_read_skew():
    cluster, _result = run_scenario()
    assert check_no_read_skew(cluster.finalized_history())


def test_update_transactions_do_not_register_in_vas():
    cluster, _result = run_scenario()
    # T1 was an update transaction: it never adds itself to any VAS, and
    # T3 collected nothing, so after quiescence the VAS are empty.
    assert cluster.total_vas_entries() == 0
