"""End-to-end keyspace-sharding suite: live shard migration under load.

The headline scenarios are the ones ISSUE 8 promised: a shard migrated
between live nodes under foreground PSI traffic completes with zero
aborts, checker-clean reads, and a final *authoritative* fingerprint --
every key's chain at its current owner -- bit-identical to a run that
never migrated; three migration-nemesis pairs (donor crashed
mid-stream, recipient crashed before the flip, donor-recipient
partition across the cutover) each leave ownership and state untouched
and converge bit-identically to a fault-free control; and under s=1.1
Zipfian skew the rebalancer's planner brings max/mean per-node load
under a bound the static consistent-hash ring provably exceeds.

Determinism mirrors the membership suite: serialized traffic with
settle pauses keeps per-key install order identical across paired runs,
so store chains, commit clocks, and sequence numbers are comparable bit
for bit even though a migration shifts event timings.

Seeds come from ``SHARDING_SEEDS`` (comma-separated) so CI can sweep a
matrix without editing the file.
"""

import os
from collections import Counter

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    DurabilityConfig,
    NetworkConfig,
    RpcConfig,
    ShardingConfig,
)
from repro.cluster.directory import ConsistentHashDirectory, ShardMap
from repro.cluster.rebalancer import plan_moves
from repro.faults import Nemesis
from repro.faults.schedules import shard_migration_schedule
from repro.metrics import check_no_read_skew, find_long_forks
from repro.sim.rng import make_rng
from repro.workloads import ZipfKeyGenerator

from tests.harness.recovery_tools import node_fingerprint

NUM_NODES = 3
NUM_KEYS = 24
NUM_SHARDS = 12

#: Per-commit settle pause: long enough for a commit's full fan-out to
#: drain, keeping per-key install order identical across paired runs.
SETTLE = 1e-3

SEEDS = tuple(
    int(s) for s in os.environ.get("SHARDING_SEEDS", "7,11").split(",")
)

pytestmark = pytest.mark.sharding


def build(seed, *, rpc=None, record_history=False, chunk_records=None):
    """A 3-node FW-KV cluster on a 12-shard ShardMap directory."""
    config = ClusterConfig(
        num_nodes=NUM_NODES,
        seed=seed,
        prepared_lease=5e-3,
        gc_enabled=False,
        durability=DurabilityConfig(wal_enabled=False),
        sharding=ShardingConfig(enabled=True, num_shards=NUM_SHARDS),
        network=NetworkConfig(jitter=5e-6, rpc=rpc or RpcConfig()),
    )
    if chunk_records is not None:
        config.healing.snapshot.chunk_records = chunk_records
    cluster = Cluster("fwkv", config, record_history=record_history)
    for i in range(NUM_KEYS):
        cluster.load(f"k{i}", 0)
    return cluster, Nemesis(cluster)


def all_keys():
    return [f"k{i}" for i in range(NUM_KEYS)]


def migration_target(cluster):
    """The loaded shard with the most keys, its owner, and a recipient."""
    shard_map = cluster.directory
    counts = Counter(shard_map.shard_of(k) for k in all_keys())
    shard = max(counts, key=lambda s: (counts[s], -s))
    donor = shard_map.owner_of(shard)
    dest = next(n for n in shard_map.node_ids if n != donor)
    return shard, donor, dest


def rmw_plan(rng, coordinators, count, sample=2):
    keys = all_keys()
    return [
        (coordinators[n % len(coordinators)], rng.sample(keys, sample))
        for n in range(count)
    ]


def spawn_plan(cluster, plan, *, settle=SETTLE):
    """Start ``(coordinator, keys)`` read-modify-write commits running."""
    outcomes = []

    def driver():
        for coordinator, keys in plan:
            node = cluster.node(coordinator)
            txn = node.begin(is_read_only=False)
            values = []
            for key in keys:
                values.append((yield from node.read(txn, key)))
            for key, value in zip(keys, values):
                node.write(txn, key, value + 1)
            ok = yield from node.commit(txn)
            outcomes.append(ok)
            yield cluster.sim.timeout(settle)

    return cluster.spawn(driver(), name="live-traffic"), outcomes


def drive(cluster, plan, *, settle=SETTLE):
    """Run a plan to completion on a stepped clock."""
    process, outcomes = spawn_plan(cluster, plan, settle=settle)
    cluster.run(until=cluster.sim.now + len(plan) * (settle + 1e-3) + 1e-3)
    assert len(outcomes) == len(plan), "plan driver did not finish in time"
    assert all(outcomes), "a planned commit failed"


def authoritative_fingerprint(cluster):
    """Every key's full chain at its *current* owner, bit-comparable.

    Migration intentionally leaves stale chains behind at the donor
    (like a decommission drain), so per-node stores differ from a
    no-migration control by design; what must be identical is the state
    the directory actually serves.
    """
    entries = {}
    for key in sorted(all_keys()):
        owner = cluster.node(cluster.directory.site(key))
        if key in owner.store:
            entries[key] = tuple(
                (v.vid, v.origin, v.seq, v.value, v.vc.to_tuple(), v.writer_txn)
                for v in owner.store.chain(key)
            )
    return entries


# ----------------------------------------------------------------------
# Fault-free live migration: zero aborts, bit-identical to no-migration
# ----------------------------------------------------------------------
def run_live_migration(seed, *, migrate):
    """Concurrent PSI traffic with (or without) one live shard migration."""
    cluster, _ = build(seed, record_history=True)
    shard, donor, dest = migration_target(cluster)
    rng = make_rng(seed, "sharding-live")
    plan = rmw_plan(rng, range(NUM_NODES), 30)
    traffic, outcomes = spawn_plan(cluster, plan, settle=4e-4)
    cluster.run(until=cluster.sim.now + 2e-3)  # traffic well underway
    if migrate:
        moved = cluster.rebalancer.migrate_shard(shard, dest)
    cluster.run()

    assert len(outcomes) == len(plan) and all(outcomes)
    assert cluster.metrics.aborts == 0, "a live migration must not abort"
    if migrate:
        assert moved.value is True
        assert cluster.directory.owner_of(shard) == dest
        assert cluster.directory.epoch == 1
        assert cluster.metrics.shard_migrations == 1

    history = cluster.finalized_history()
    assert check_no_read_skew(history).ok
    assert find_long_forks(history) == []
    assert len({n.site_vc.to_tuple() for n in cluster.nodes}) == 1
    return {
        "authoritative": authoritative_fingerprint(cluster),
        "plan_counts": Counter(k for _, keys in plan for k in keys),
        "cluster": cluster,
        "shard": shard,
        "dest": dest,
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_fault_free_migration_under_live_traffic(seed):
    """The tentpole acceptance scenario: a shard moves under live PSI
    traffic with zero foreground aborts and keys readable throughout,
    and the served state is bit-identical to a no-migration control."""
    migrated = run_live_migration(seed, migrate=True)
    control = run_live_migration(seed, migrate=False)
    assert migrated["authoritative"] == control["authoritative"]

    # The moved keys are served by the new owner with their latest values.
    cluster = migrated["cluster"]
    shard_map = cluster.directory
    moved = [k for k in all_keys() if shard_map.shard_of(k) == migrated["shard"]]
    assert moved, "the chosen shard must hold keys"
    seen = {}

    def read_moved(txn):
        for key in moved:
            seen[key] = yield from txn.read(key)

    result = cluster.run_txn(read_moved, node=migrated["dest"], read_only=True)
    assert result.committed
    assert seen == {k: migrated["plan_counts"][k] for k in moved}


# ----------------------------------------------------------------------
# Migration-nemesis pairs: donor crash, recipient crash, partition
# ----------------------------------------------------------------------
def run_migration_chaos(seed, *, fault):
    """One faulted migration attempt, then the same clean migration.

    ``fault`` is ``None`` (control), ``"donor"``, ``"recipient"``, or
    ``"partition"``.  The faulty run launches the migration at ``t0``
    with the fault landing mid-stream (``chunk_records=1`` stretches the
    transfer across several round trips); the stream settles against the
    dead link, the rebalancer unfences without flipping, and ownership,
    chains, and foreground traffic are untouched.  Both runs then
    perform the identical clean migration on the same timeline and must
    end bit-identical per node.
    """
    rpc = RpcConfig(request_timeout=1.5e-3, max_attempts=3)
    cluster, nemesis = build(seed, rpc=rpc, chunk_records=1)
    shard_map = cluster.directory
    rng = make_rng(seed, f"sharding-chaos")
    drive(cluster, rmw_plan(rng, range(NUM_NODES), 12))
    shard, donor, dest = migration_target(cluster)
    t0 = cluster.sim.now
    if fault is not None:
        nemesis.start(
            shard_migration_schedule(
                donor,
                dest,
                t0,
                6e-4,
                crash_donor=fault == "donor",
                crash_recipient=fault == "recipient",
                partition=fault == "partition",
                # Longer than the stream's full RPC retry ladder, so the
                # transfer cannot sneak through after an early heal.
                down_for=15e-3,
            )
        )
        first = cluster.rebalancer.migrate_shard(shard, dest)
        cluster.run(until=t0 + 20e-3)
        assert first.triggered, "faulted migration did not settle"
        assert first.value is False
        assert shard_map.owner_of(shard) == donor, (
            "a failed migration must not flip ownership"
        )
        assert shard_map.epoch == 0
        assert cluster.metrics.shard_migrations_failed == 1
        assert not cluster.node(donor).membership.moving, (
            "a failed migration must unfence"
        )
    else:
        cluster.run(until=t0 + 20e-3)
    second = cluster.rebalancer.migrate_shard(shard, dest)
    cluster.run(until=t0 + 30e-3)
    assert second.triggered and second.value is True
    assert shard_map.owner_of(shard) == dest

    drive(cluster, rmw_plan(rng, range(NUM_NODES), 8))
    cluster.run()
    assert cluster.metrics.aborts == 0
    assert cluster.metrics.shard_migrations == 1
    return {
        "fingerprints": [node_fingerprint(n) for n in cluster.nodes],
        "clocks": {n.site_vc.to_tuple() for n in cluster.nodes},
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_donor_crash_mid_stream_converges(seed):
    faulty = run_migration_chaos(seed, fault="donor")
    control = run_migration_chaos(seed, fault=None)
    assert len(faulty["clocks"]) == 1
    assert faulty["fingerprints"] == control["fingerprints"]


@pytest.mark.parametrize("seed", SEEDS)
def test_recipient_crash_before_flip_converges(seed):
    faulty = run_migration_chaos(seed, fault="recipient")
    control = run_migration_chaos(seed, fault=None)
    assert len(faulty["clocks"]) == 1
    assert faulty["fingerprints"] == control["fingerprints"]


@pytest.mark.parametrize("seed", SEEDS)
def test_partition_during_cutover_converges(seed):
    faulty = run_migration_chaos(seed, fault="partition")
    control = run_migration_chaos(seed, fault=None)
    assert len(faulty["clocks"]) == 1
    assert faulty["fingerprints"] == control["fingerprints"]


def test_migration_nemesis_is_deterministic():
    """The most eventful scenario replays bit-identically."""
    seed = SEEDS[0]
    once = run_migration_chaos(seed, fault="donor")
    twice = run_migration_chaos(seed, fault="donor")
    assert once["fingerprints"] == twice["fingerprints"]


# ----------------------------------------------------------------------
# Skew: the rebalancer flattens s=1.1 Zipf load the static ring cannot
# ----------------------------------------------------------------------
SKEW_BOUND = 1.25


@pytest.mark.parametrize("seed", SEEDS)
def test_rebalancer_beats_static_ring_under_zipf_skew(seed):
    """Under s=1.1 skew, ``plan_moves`` brings max/mean per-node load
    under a bound the static consistent-hash ring provably exceeds.

    Same planner the live rebalancer runs, fed by the same kind of
    per-shard counters -- so this regression gates the production code
    path, not a test-local reimplementation.  (Empirically the ring
    lands around 1.7x mean and the plan around 1.02x; 1.25 splits them
    with wide margins on both sides across the CI seed matrix.)
    """
    nodes, num_keys, num_shards, draws = 4, 512, 128, 20_000
    keys = [f"u{i}" for i in range(num_keys)]
    generator = ZipfKeyGenerator(num_keys, s=1.1)
    rng = make_rng(seed, "zipf-skew")
    counts = Counter(generator.next(rng) for _ in range(draws))
    mean = draws / nodes

    ring = ConsistentHashDirectory(list(range(nodes)))
    static_load = Counter()
    for index, count in counts.items():
        static_load[ring.site(keys[index])] += count
    static_ratio = max(static_load.values()) / mean

    shard_map = ShardMap(list(range(nodes)), num_shards)
    shard_loads = Counter()
    for index, count in counts.items():
        shard_loads[shard_map.shard_of(keys[index])] += count
    moves = plan_moves(
        dict(shard_loads),
        shard_map.owners(),
        shard_map.node_ids,
        threshold=1.02,
        max_moves=64,
    )
    assert moves, "skewed load must trigger rebalancing moves"
    for shard, dest in moves:
        shard_map.assign(shard, dest)
    rebalanced_load = Counter()
    for index, count in counts.items():
        rebalanced_load[shard_map.site(keys[index])] += count
    rebalanced_ratio = max(rebalanced_load.values()) / mean

    assert static_ratio > SKEW_BOUND, (
        f"static ring unexpectedly balanced: {static_ratio:.3f}"
    )
    assert rebalanced_ratio < SKEW_BOUND, (
        f"rebalancer left imbalance: {rebalanced_ratio:.3f}"
    )


def test_rebalance_once_moves_hot_shard_under_live_skew():
    """The live metrics-driven path: skewed traffic populates the
    per-shard counters, and one ``rebalance_once`` pass migrates load
    off the hottest node."""
    seed = SEEDS[0]
    cluster, _ = build(seed)
    shard_map = cluster.directory
    cluster.config.sharding.min_samples = 16
    # Pin all the traffic on two loaded shards of one node, so the hot
    # node's load is divisible and a single shard move must improve it
    # (two hot shards on different nodes would be irreducible: moving
    # either only relocates the hotspot, and the planner refuses).
    hot_owner = 0
    hot_shards = [
        s
        for s in shard_map.shards_of(hot_owner)
        if any(shard_map.shard_of(k) == s for k in all_keys())
    ][:2]
    assert len(hot_shards) == 2
    hot = [
        next(k for k in all_keys() if shard_map.shard_of(k) == s)
        for s in hot_shards
    ]
    plan = [(n % NUM_NODES, list(hot)) for n in range(12)]
    drive(cluster, plan)
    assert sum(cluster.metrics.shard_loads.values()) >= 16

    done = None

    def driver():
        nonlocal done
        done = yield from cluster.rebalancer.rebalance_once()

    cluster.spawn(driver(), name="rebalance")
    cluster.run()
    assert done == 1
    assert cluster.metrics.shard_migrations == 1
    shard, src, dst = cluster.rebalancer.migrations[0]
    assert src == hot_owner, "the hottest node must shed the shard"
    assert shard_map.owner_of(shard) == dst
    assert cluster.metrics.aborts == 0


# ----------------------------------------------------------------------
# Elastic membership on a sharded cluster
# ----------------------------------------------------------------------
def test_join_and_decommission_on_sharded_cluster():
    """The membership drivers work through ShardMap's incremental ops:
    a joiner inherits whole shards, a decommissioned node hands its
    shards off, and no lookup ever lands on the retired member."""
    seed = SEEDS[0]
    cluster, _ = build(seed)
    shard_map = cluster.directory
    rng = make_rng(seed, "sharding-membership")
    drive(cluster, rmw_plan(rng, range(NUM_NODES), 8))

    joined = cluster.add_node()
    cluster.run()
    assert joined.value is True
    joiner = NUM_NODES
    assert shard_map.shards_of(joiner), "the joiner must own shards"
    assert all(
        cluster.directory.site(k) in shard_map.node_ids for k in all_keys()
    )

    victim = 0
    left = cluster.remove_node(victim)
    cluster.run()
    assert left.value is True
    assert victim in shard_map.retired
    assert not shard_map.shards_of(victim)
    assert all(cluster.directory.site(k) != victim for k in all_keys())
    for key in all_keys():
        assert key in cluster.node(cluster.directory.site(key)).store.keys()
    assert cluster.metrics.aborts == 0


# ----------------------------------------------------------------------
# Observability: counters and trace kinds
# ----------------------------------------------------------------------
def test_sharding_counters_and_traces_surface():
    """The sharding counters exist under stable summary() names and the
    migration trace kinds are emitted."""
    cluster, _ = build(SEEDS[0])
    cluster.tracer.enable(
        "shard_migrate_start", "shard_migrated", "shard_migrate_failed",
    )
    drive(cluster, [(0, ["k0", "k1"]), (1, ["k2", "k3"])])
    shard, donor, dest = migration_target(cluster)
    moved = cluster.rebalancer.migrate_shard(shard, dest)
    cluster.run()
    assert moved.value is True

    summary = cluster.metrics.summary()
    for name in (
        "shard_migrations",
        "shard_migration_keys",
        "shard_migrations_failed",
        "rebalance_rounds",
    ):
        assert name in summary, f"{name} missing from metrics summary"
    assert summary["shard_migrations"] == 1
    assert summary["shard_migration_keys"] >= 1
    assert summary["shard_migrations_failed"] == 0
    assert cluster.metrics.shard_loads, "load tracking must be armed"

    assert cluster.tracer.of_kind("shard_migrate_start")
    assert cluster.tracer.of_kind("shard_migrated")
    assert cluster.tracer.of_kind("shard_migrate_failed") == []
