"""End-to-end self-healing suite: heal without restart, false suspicion,
fail-fast commits, and checkpointed recovery.

The headline scenario is the one the ROADMAP promised: a node that
sleeps through a partition -- volatile state intact, no restart --
converges back to a never-partitioned control's exact durable state
through *background anti-entropy alone*, with zero foreground traffic
after the heal.  The other scenarios pin down the failure detector's
re-admission behaviour (a silent-but-alive peer is suspected, then
trusted again on its first arrival, with no committed write lost), the
coordinator's fail-fast abort against a known-dead participant, and the
checkpoint/truncation pipeline driving a bounded-replay recovery that is
bit-identical to a full-history one.

Everything is deterministic: the healing loops draw from per-node seeded
RNG streams and ``Simulator.run(until=...)`` always lands on the exact
deadline, so both runs of a control/faulty pair execute the same
transaction plan on the same virtual-time skeleton.  Because the
periodic loops never quiesce, these tests step the clock with
``run(until=...)`` and call ``stop_healing()`` before any final
run-to-quiescence drain.

Seeds come from ``HEALING_SEEDS`` (comma-separated) so CI can sweep a
matrix without editing the file.
"""

import os

import pytest

from repro import (
    CheckpointConfig,
    Cluster,
    ClusterConfig,
    DurabilityConfig,
    HealingConfig,
    NetworkConfig,
    RpcConfig,
    SnapshotTransferConfig,
)
from repro.cluster import ModuloDirectory
from repro.faults import Nemesis
from repro.faults.schedules import (
    CRASH_DURABLE,
    HEAL,
    PARTITION,
    FaultEvent,
    isolate_cycle,
    truncation_gap_schedule,
)
from repro.healing import ALIVE, DEAD
from repro.metrics.stats import AbortReason
from repro.net.rpc import RpcTimeoutError
from repro.sim.rng import make_rng
from repro.storage.wal import replay, store_fingerprint

from tests.harness.recovery_tools import node_fingerprint, restart

NUM_NODES = 4
NUM_KEYS = 16
VICTIM = 2

#: Anti-entropy gossip period used by the convergence scenarios, and the
#: post-heal budget granted before asserting convergence (periods).
AE_INTERVAL = 4e-4
CONVERGE_PERIODS = 10
#: Per-commit settle pause in the run(until=...) driver: long enough for
#: every in-flight Decide/Propagate (except partition-destroyed ones) to
#: drain, which makes per-key install order -- and therefore the store
#: fingerprint -- identical between a faulty run and its control.
SETTLE = 1e-3

SEEDS = tuple(
    int(s) for s in os.environ.get("HEALING_SEEDS", "7,11").split(",")
)

pytestmark = pytest.mark.healing


def build(seed, healing, *, wal=False, record_history=False):
    config = ClusterConfig(
        num_nodes=NUM_NODES,
        seed=seed,
        prepared_lease=5e-3,
        gc_enabled=False,
        durability=DurabilityConfig(
            wal_enabled=wal, termination_query=wal
        ),
        network=NetworkConfig(
            jitter=5e-6,
            rpc=RpcConfig(request_timeout=1.5e-3, max_attempts=3),
        ),
        healing=healing,
    )
    cluster = Cluster(
        "fwkv", config, directory=ModuloDirectory(NUM_NODES),
        record_history=record_history,
    )
    for i in range(NUM_KEYS):
        cluster.load(f"k{i}", 0)
    return cluster, Nemesis(cluster)


def keys_by_site(cluster):
    sites = {}
    for i in range(NUM_KEYS):
        key = f"k{i}"
        sites.setdefault(cluster.directory.site(key), []).append(key)
    return sites


def drive(cluster, plan, *, settle=SETTLE):
    """Run ``(coordinator, keys)`` read-modify-write commits sequentially.

    run(until=...)-based so it works with healing loops active (the
    simulator never quiesces).  Each commit is followed by a settle pause
    that drains its fan-out, keeping the transaction sequence -- and the
    per-key version order -- identical across runs of the same plan.
    """
    outcomes = []

    def driver():
        for coordinator, keys in plan:
            node = cluster.node(coordinator)
            txn = node.begin(is_read_only=False)
            values = []
            for key in keys:
                values.append((yield from node.read(txn, key)))
            for key, value in zip(keys, values):
                node.write(txn, key, value + 1)
            ok = yield from node.commit(txn)
            outcomes.append(ok)
            yield cluster.sim.timeout(settle)

    cluster.spawn(driver(), name="plan-driver")
    cluster.run(until=cluster.sim.now + len(plan) * (settle + 1e-3) + 1e-3)
    assert len(outcomes) == len(plan), "plan driver did not finish in time"
    assert all(outcomes), "a planned commit failed"


def commit_once(cluster, coordinator, writes, *, budget=5e-3):
    """One blind-write commit attempt; returns (ok, virtual duration)."""
    result = []

    def attempt():
        node = cluster.node(coordinator)
        txn = node.begin(is_read_only=False)
        started = cluster.sim.now
        for key, value in writes:
            node.write(txn, key, value)
        try:
            ok = yield from node.commit(txn)
        except RpcTimeoutError:
            node.abort(txn)
            ok = False
        result.append((ok, cluster.sim.now - started))

    cluster.spawn(attempt(), name="one-commit")
    cluster.run(until=cluster.sim.now + budget)
    assert result, "commit attempt did not finish within its budget"
    return result[0]


# ----------------------------------------------------------------------
# Heal without restart: background anti-entropy closes the gap
# ----------------------------------------------------------------------
def run_isolation_scenario(seed, *, partition):
    """The headline scenario, with or without the partition window.

    Identical plans on an identical virtual-time skeleton, so the faulty
    run's victim is comparable bit-for-bit against the control's at the
    post-convergence barrier.
    """
    healing = HealingConfig(
        anti_entropy_interval=AE_INTERVAL, digest_timeout=5e-4
    )
    cluster, nemesis = build(seed, healing)
    rng = make_rng(seed, "healing-isolation")
    all_keys = [f"k{i}" for i in range(NUM_KEYS)]
    victim_keys = set(keys_by_site(cluster).get(VICTIM, []))
    other_keys = sorted(set(all_keys) - victim_keys)
    assert victim_keys, "the keyspace must place keys at the victim"

    # Phase A: commits everywhere, victim included, so the victim holds
    # real store content and a nonzero own-origin frontier.
    plan_a = [
        (n % NUM_NODES, rng.sample(all_keys, 2)) for n in range(12)
    ]
    drive(cluster, plan_a)

    cut_at = cluster.sim.now + 1e-4
    window = 20e-3
    if partition:
        nemesis.start(
            isolate_cycle(VICTIM, range(NUM_NODES), cut_at, window)
        )
    cluster.run(until=cut_at + 1e-5)  # let the cut land (no-op in control)

    # Phase B (the isolation window): commits that avoid the victim
    # entirely -- the only victim-bound traffic is what the cut destroys.
    plan_b = [
        ((0, 1, 3)[n % 3], rng.sample(other_keys, 2)) for n in range(9)
    ]
    drive(cluster, plan_b)
    assert cluster.sim.now < cut_at + window, "plan B outran the window"

    lag = None
    if partition:
        # The victim slept through phase B: its clock is strictly behind.
        victim_vc = cluster.nodes[VICTIM].site_vc.to_tuple()
        peer_vc = cluster.nodes[0].site_vc.to_tuple()
        lag = sum(b - a for a, b in zip(victim_vc, peer_vc))
        assert lag == len(plan_b)

    # Heal, then grant a bounded number of anti-entropy periods with
    # ZERO foreground traffic: only the background loops run.
    heal_at = cut_at + window
    budget = CONVERGE_PERIODS * (AE_INTERVAL * 1.1 + 5e-4)
    cluster.run(until=heal_at + budget)

    fingerprint = node_fingerprint(cluster.nodes[VICTIM])
    clocks = cluster.site_clocks()
    cluster.stop_healing()
    cluster.run()  # drain the wound-down loops and any stragglers
    return {
        "cluster": cluster,
        "nemesis": nemesis,
        "fingerprint": fingerprint,
        "clocks": clocks,
        "lag": lag,
        "window": window,
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_partitioned_node_heals_without_restart(seed):
    healed = run_isolation_scenario(seed, partition=True)
    control = run_isolation_scenario(seed, partition=False)

    # Bit-identical convergence: store chains (vids included), siteVC,
    # and the coordinator sequence counter all match the control --
    # reached with no restart and no foreground traffic after the heal.
    assert healed["fingerprint"] == control["fingerprint"]
    assert all(clock == healed["clocks"][0] for clock in healed["clocks"])

    cluster, nemesis = healed["cluster"], healed["nemesis"]
    victim = cluster.nodes[VICTIM]
    assert victim.recoveries == 0  # healed, never restarted
    metrics = cluster.metrics
    assert metrics.anti_entropy_rounds > 0
    # The gap closed through the healing machinery: streamed Decides
    # (peer pushes) and/or digest-driven clock catch-up (victim pulls).
    assert metrics.records_streamed + metrics.catchup_advances >= healed["lag"]

    # Satellite: the nemesis accounted every healed link -- one report
    # per direction, exact window duration, and the cut provably
    # destroyed traffic toward the victim.
    reports = nemesis.heal_reports
    assert len(reports) == 2 * (NUM_NODES - 1)
    assert all(
        duration == pytest.approx(healed["window"])
        for (_a, _b, duration, _d, _dr) in reports
    )
    toward_victim = sum(
        dropped for (_a, b, _dur, dropped, _dr) in reports if b == VICTIM
    )
    assert toward_victim > 0
    assert not cluster.any_locks_held()


def test_isolation_scenario_is_deterministic():
    """Same seed, same faults => same converged state and same healing
    counter values, down to the last streamed record."""
    seed = SEEDS[0]

    def probe():
        result = run_isolation_scenario(seed, partition=True)
        metrics = result["cluster"].metrics
        return (
            result["fingerprint"],
            result["clocks"],
            metrics.anti_entropy_rounds,
            metrics.records_streamed,
            metrics.catchup_advances,
            result["nemesis"].heal_reports,
        )

    assert probe() == probe()


# ----------------------------------------------------------------------
# False suspicion: a silent peer is suspected, then re-admitted
# ----------------------------------------------------------------------
def test_false_suspicion_readmits_peer_without_losing_writes():
    seed = SEEDS[0]
    healing = HealingConfig(heartbeat_interval=2e-4)
    cluster, nemesis = build(seed, healing)
    sites = keys_by_site(cluster)
    detector = cluster.nodes[0].healing.detector
    assert cluster.nodes[0].healing.armed

    # Warm-up: heartbeats establish each peer's inter-arrival mean.
    cluster.run(until=cluster.sim.now + 10 * 2e-4)
    assert cluster.metrics.heartbeats_sent > 0
    assert detector.state(VICTIM) == ALIVE

    # Cut only the 0 <-> victim link: to node 0 the victim goes silent,
    # to everyone else it stays perfectly reachable ("slow" from one
    # observer's seat, alive in fact).
    nemesis.apply(FaultEvent(cluster.sim.now, PARTITION, 0, VICTIM))
    nemesis.apply(FaultEvent(cluster.sim.now, PARTITION, VICTIM, 0))
    cluster.run(until=cluster.sim.now + 3e-3)  # ~15 silent intervals
    assert detector.state(VICTIM) == DEAD
    assert cluster.metrics.suspicions_raised >= 1

    # While node 0 holds its wrong verdict, a commit through node 1
    # lands writes at the suspected-but-alive victim.
    victim_key = sites[VICTIM][0]
    ok, _ = commit_once(cluster, 1, [(victim_key, "survivor")])
    assert ok

    # Heal: the victim's first heartbeat arrival restores trust.
    nemesis.apply(FaultEvent(cluster.sim.now, HEAL, 0, VICTIM))
    nemesis.apply(FaultEvent(cluster.sim.now, HEAL, VICTIM, 0))
    cluster.run(until=cluster.sim.now + 5 * 2e-4)
    assert detector.state(VICTIM) == ALIVE
    assert cluster.metrics.suspicions_cleared >= 1

    # The re-admitted peer is fully usable from node 0 again, and the
    # write committed during the suspicion window was never lost.
    ok, _ = commit_once(cluster, 0, [(victim_key, "after-heal")])
    assert ok
    cluster.stop_healing()
    cluster.run()
    chain = list(cluster.nodes[VICTIM].store.chain(victim_key))
    assert [v.value for v in chain[-2:]] == ["survivor", "after-heal"]
    assert not cluster.any_locks_held()


# ----------------------------------------------------------------------
# Fail-fast commits against a known-dead participant
# ----------------------------------------------------------------------
def test_commit_fails_fast_on_dead_participant():
    seed = SEEDS[0]
    healing = HealingConfig(heartbeat_interval=2e-4)  # fail_fast default on
    cluster, nemesis = build(seed, healing)
    sites = keys_by_site(cluster)
    detector = cluster.nodes[0].healing.detector

    cluster.run(until=cluster.sim.now + 10 * 2e-4)  # warm-up
    for event in isolate_cycle(
        VICTIM, range(NUM_NODES), cluster.sim.now, 5e-3
    ):
        if event.kind == PARTITION:
            nemesis.apply(event)
    cluster.run(until=cluster.sim.now + 3e-3)
    assert detector.is_dead(VICTIM)

    # A commit spanning node 0 and the dead victim aborts immediately:
    # no prepare RPC, no timeout ladder, just AbortReason.PEER_DEAD.
    writes = [(sites[0][0], 1), (sites[VICTIM][0], 1)]
    ok, elapsed = commit_once(cluster, 0, writes)
    assert not ok
    assert elapsed < cluster.config.network.rpc.request_timeout
    assert cluster.metrics.aborts_by_reason[AbortReason.PEER_DEAD] == 1

    # After the heal the detector re-admits the victim and the same
    # commit goes through.
    for peer in range(NUM_NODES):
        if peer != VICTIM:
            nemesis.apply(FaultEvent(cluster.sim.now, HEAL, VICTIM, peer))
            nemesis.apply(FaultEvent(cluster.sim.now, HEAL, peer, VICTIM))
    cluster.run(until=cluster.sim.now + 5 * 2e-4)
    assert detector.state(VICTIM) == ALIVE
    ok, _ = commit_once(cluster, 0, writes)
    assert ok
    cluster.stop_healing()
    cluster.run()
    assert not cluster.any_locks_held()


# ----------------------------------------------------------------------
# Checkpointed recovery: bounded replay, bit-identical state
# ----------------------------------------------------------------------
def run_txn(cluster, coordinator, keys):
    """Drive one read-modify-write transaction to quiescence (no healing
    loops are configured in the checkpoint scenarios, so quiescence runs
    are safe and keep each transaction's fan-out fully drained)."""
    node = cluster.node(coordinator)

    def process():
        for _ in range(6):
            txn = node.begin(is_read_only=False)
            try:
                values = []
                for key in keys:
                    values.append((yield from node.read(txn, key)))
                for key, value in zip(keys, values):
                    node.write(txn, key, value + 1)
                ok = yield from node.commit(txn)
            except RpcTimeoutError:
                node.abort(txn)
                ok = False
            if ok:
                return True
            yield cluster.sim.timeout(100e-6)
        return False

    return cluster.run_process(process())


def run_checkpoint_scenario(seed, *, checkpointed):
    """Identical transaction plan and crash point; only the checkpoint
    (and its truncation) differs between the two runs."""
    cluster, nemesis = build(seed, HealingConfig(), wal=True)
    rng = make_rng(seed, "healing-checkpoint")
    all_keys = [f"k{i}" for i in range(NUM_KEYS)]
    victim_keys = set(keys_by_site(cluster).get(VICTIM, []))
    other_keys = sorted(set(all_keys) - victim_keys)
    victim = cluster.nodes[VICTIM]

    plan_a = [(n % NUM_NODES, rng.sample(all_keys, 2)) for n in range(12)]
    for coordinator, keys in plan_a:
        assert run_txn(cluster, coordinator, keys)

    record = None
    if checkpointed:
        record = victim.checkpoint_now()
        assert record is not None
        assert cluster.metrics.checkpoints_taken == 1
        full_log = victim.wal.records()  # prefix + checkpoint

        # Harvest frontier evidence with one explicit gossip round per
        # peer (no loops configured -- the rounds are one-shot here),
        # which also triggers the truncation re-check.
        for peer in (0, 1, 3):
            cluster.run_process(victim.healing.gossip_round(peer))
        assert victim.healing.rounds == 3
        dropped = record.records_below
        assert dropped > 0
        assert victim.wal.truncated == dropped
        assert cluster.metrics.wal_records_truncated == dropped
        # Same evidence, precise GC: every decision at or below the
        # stable floor left the in-memory log too.
        floor = victim.site_vc[VICTIM]
        assert all(
            d.seq_no > floor for d in victim._decisions.values()
        )

        # The equivalence the whole scheme rests on, checked on the live
        # logs: truncated replay == full-history replay, suffix-only cost.
        full = replay(full_log, NUM_NODES)
        truncated = replay(victim.wal.records(), NUM_NODES)
        assert store_fingerprint(truncated.store) == store_fingerprint(
            full.store
        )
        assert truncated.site_vc.to_tuple() == full.site_vc.to_tuple()
        assert truncated.curr_seq_no == full.curr_seq_no
        assert truncated.replayed == 1
        assert full.replayed == len(full_log)

    # Phase B grows the post-checkpoint suffix, victim included.
    plan_b = [(n % NUM_NODES, rng.sample(all_keys, 2)) for n in range(8)]
    for coordinator, keys in plan_b:
        assert run_txn(cluster, coordinator, keys)

    # Durable crash at a quiescent instant, three commits land while the
    # victim is down (lost Propagates for catch-up to repair), restart.
    nemesis.apply(FaultEvent(cluster.sim.now, CRASH_DURABLE, VICTIM))
    for n in range(3):
        assert run_txn(cluster, (0, 1, 3)[n % 3], rng.sample(other_keys, 2))
    surviving = len(victim.wal)
    window = restart(cluster, nemesis, VICTIM)
    cluster.run()
    assert window.closed and victim.recoveries == 1

    return {
        "cluster": cluster,
        "fingerprint": node_fingerprint(victim),
        "replayed": cluster.metrics.wal_records_replayed,
        "surviving": surviving,
        "truncated": victim.wal.truncated,
        "checkpoint": record,
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_checkpointed_recovery_matches_full_history(seed):
    ckpt = run_checkpoint_scenario(seed, checkpointed=True)
    full = run_checkpoint_scenario(seed, checkpointed=False)

    # Recovery from snapshot + suffix rebuilds the exact state that
    # replaying the entire (never-truncated) history rebuilds.
    assert ckpt["fingerprint"] == full["fingerprint"]

    # And it did so with a bounded replay: only the records surviving
    # above the checkpoint, strictly fewer than the full history.
    assert ckpt["replayed"] == ckpt["surviving"]
    assert full["replayed"] == full["surviving"]
    assert ckpt["truncated"] > 0
    assert ckpt["replayed"] < full["replayed"]
    assert ckpt["replayed"] + ckpt["truncated"] == full["replayed"] + 1

    # Catch-up repaired exactly the three Propagates each run lost.
    assert ckpt["cluster"].metrics.catchup_advances == 3
    assert full["cluster"].metrics.catchup_advances == 3
    clocks = ckpt["cluster"].site_clocks()
    assert all(clock == clocks[0] for clock in clocks)


def test_automatic_checkpoint_loop_respects_min_records():
    """The checkpoint loop takes snapshots only after min_records new
    WAL appends, and truncates once gossip evidence stabilises them."""
    from repro import CheckpointConfig

    seed = SEEDS[0]
    healing = HealingConfig(
        anti_entropy_interval=AE_INTERVAL,
        digest_timeout=5e-4,
        checkpoint=CheckpointConfig(interval=2e-3, min_records=8),
    )
    cluster, _nemesis = build(seed, healing, wal=True)
    rng = make_rng(seed, "healing-auto-ckpt")
    all_keys = [f"k{i}" for i in range(NUM_KEYS)]
    victim = cluster.nodes[VICTIM]

    plan = [(n % NUM_NODES, rng.sample(all_keys, 2)) for n in range(10)]
    drive(cluster, plan)
    # Several checkpoint periods with gossip feeding frontier evidence.
    cluster.run(until=cluster.sim.now + 6e-3)
    assert cluster.metrics.checkpoints_taken >= 1
    assert victim.healing.checkpoints.taken >= 1
    assert cluster.metrics.wal_records_truncated > 0

    # An idle stretch takes no further checkpoints: fewer than
    # min_records new WAL records accumulated.
    taken = cluster.metrics.checkpoints_taken
    cluster.run(until=cluster.sim.now + 6e-3)
    assert cluster.metrics.checkpoints_taken == taken

    # A recovered-from-checkpoint node still matches the live cluster.
    cluster.stop_healing()
    cluster.run()
    result = replay(victim.wal.records(), NUM_NODES)
    assert result.checkpoints >= 1
    assert store_fingerprint(result.store) == store_fingerprint(victim.store)
    assert result.site_vc.to_tuple() == victim.site_vc.to_tuple()


# ----------------------------------------------------------------------
# Snapshot transfer: repairing a peer stranded below the pruned floor
# ----------------------------------------------------------------------
def run_snapshot_scenario(seed, *, partition):
    """Bounded retention strands a partitioned victim below the sender's
    pruned floor; the next gossip round that sees it must repair it by
    shipping the checkpoint snapshot (the truncated records are gone),
    then top up the post-checkpoint suffix through the ordinary stream.
    The control run executes the identical call sequence with the victim
    reachable, so the repaired victim is comparable bit for bit.
    """
    healing = HealingConfig(
        checkpoint=CheckpointConfig(max_peer_lag=2),
        snapshot=SnapshotTransferConfig(chunk_records=2),
    )
    cluster, nemesis = build(seed, healing, wal=True)
    cluster.tracer.enable(
        "snapshot_offer", "snapshot_accept", "snapshot_shipped",
        "snapshot_install", "snapshot_abandon", "stream",
    )
    rng = make_rng(seed, "healing-snapshot")
    all_keys = [f"k{i}" for i in range(NUM_KEYS)]
    victim_keys = set(keys_by_site(cluster).get(VICTIM, []))
    other_keys = sorted(set(all_keys) - victim_keys)
    sender = cluster.nodes[0]
    victim = cluster.nodes[VICTIM]

    # Phase A: commits everywhere, then one full gossip mesh so every
    # node holds frontier evidence for every peer (no loops are
    # configured -- every round in this scenario is an explicit call).
    plan_a = [(n % NUM_NODES, rng.sample(all_keys, 2)) for n in range(12)]
    for coordinator, keys in plan_a:
        assert run_txn(cluster, coordinator, keys)
    for node in cluster.nodes:
        for peer in range(NUM_NODES):
            if peer != node.node_id:
                cluster.run_process(node.healing.gossip_round(peer))

    # The victim sleeps through everything after this cut; the control
    # victim stays reachable and follows along via normal Propagates.
    if partition:
        for event in truncation_gap_schedule(
            VICTIM, range(NUM_NODES), cluster.sim.now, 1.0
        ):
            if event.kind == PARTITION:
                nemesis.apply(event)

    # Phase B: three commits per surviving origin -- deeper than
    # max_peer_lag, so the victim's stale evidence strands it.
    plan_b = [
        ((0, 1, 3)[n % 3], rng.sample(other_keys, 2)) for n in range(9)
    ]
    for coordinator, keys in plan_b:
        assert run_txn(cluster, coordinator, keys)

    # Checkpoint at the sender, then gossip with the surviving peers:
    # their evidence refreshes in-round, the victim sits beyond the
    # retention bound, so the WAL truncates and the decision log prunes
    # -- the victim is now below the floor, unreachable by the push.
    record = sender.checkpoint_now()
    assert record is not None
    for peer in (1, 3):
        cluster.run_process(sender.healing.gossip_round(peer))
    floor = sender.healing.checkpoints.pruned_floor
    assert sender.wal.truncated == record.records_below > 0
    if partition:
        assert victim.site_vc[0] < floor, "victim must sit below the floor"

    # Phase C: a post-truncation suffix the snapshot does not cover; the
    # repair round must stream it normally on top of the install.
    plan_c = [(0, rng.sample(other_keys, 2)) for _ in range(3)]
    for coordinator, keys in plan_c:
        assert run_txn(cluster, coordinator, keys)

    if partition:
        for peer in range(NUM_NODES):
            if peer != VICTIM:
                nemesis.apply(
                    FaultEvent(cluster.sim.now, HEAL, VICTIM, peer)
                )
                nemesis.apply(
                    FaultEvent(cluster.sim.now, HEAL, peer, VICTIM)
                )

    # The repair round: the digest reveals the below-floor gap, the
    # snapshot ships and installs behind the fence, the suffix streams.
    cluster.run_process(sender.healing.gossip_round(VICTIM))
    cluster.run()

    return {
        "cluster": cluster,
        "fingerprint": node_fingerprint(victim),
        "clocks": cluster.site_clocks(),
        "floor": floor,
        "shipped": sender.healing.snapshots_shipped,
        "installs": victim.snapshot_installs,
        "checkpoint": record,
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_snapshot_transfer_repairs_truncation_gap(seed):
    repaired = run_snapshot_scenario(seed, partition=True)
    control = run_snapshot_scenario(seed, partition=False)

    # Bit-identical convergence through the snapshot: store chains (vids
    # included), siteVC, and the coordinator counter all match the
    # never-partitioned control's victim.
    assert repaired["fingerprint"] == control["fingerprint"]
    assert all(
        clock == repaired["clocks"][0] for clock in repaired["clocks"]
    )
    assert repaired["shipped"] == 1 and repaired["installs"] == 1
    assert control["shipped"] == 0 and control["installs"] == 0

    cluster = repaired["cluster"]
    tracer = cluster.tracer
    offers = tracer.of_kind("snapshot_offer")
    assert [(r.node, r.details["peer"]) for r in offers] == [(0, VICTIM)]
    assert tracer.of_kind("snapshot_abandon") == []
    installs = tracer.of_kind("snapshot_install")
    assert [r.node for r in installs] == [VICTIM]
    floor = repaired["floor"]
    assert installs[0].details["frontier"] == floor

    # Everything below the pruned floor was covered by the snapshot
    # alone: every record streamed toward the victim sits strictly
    # above it, and the suffix did stream (the install is not enough).
    toward_victim = [
        r for r in tracer.of_kind("stream") if r.details["peer"] == VICTIM
    ]
    assert toward_victim, "the post-checkpoint suffix must still stream"
    assert all(r.details["first"] > floor for r in toward_victim)

    record = repaired["checkpoint"]
    metrics = cluster.metrics
    assert metrics.snapshot_offers == 1
    assert metrics.snapshot_rejected == 0
    assert metrics.snapshot_abandoned == 0
    assert metrics.snapshot_chains == len(record.chains)
    assert metrics.snapshot_chunks == (len(record.chains) + 1) // 2
    assert not cluster.any_locks_held()


# ----------------------------------------------------------------------
# Lifecycle idempotency: stop/start cycles never stack duplicate loops
# ----------------------------------------------------------------------
def test_healing_stop_start_cycles_do_not_stack_loops():
    """Each start() bumps the daemon generation and strands the loops of
    any earlier one, so lifecycle churn -- the elastic-membership drivers
    call start()/stop() freely around reconfigurations -- cannot stack
    duplicate heartbeat/gossip loops and double the background rate."""
    seed = SEEDS[0]
    healing = HealingConfig(heartbeat_interval=2e-4)
    cluster, _ = build(seed, healing)
    window = 40 * 2e-4
    cluster.run(until=cluster.sim.now + window)
    baseline = cluster.metrics.heartbeats_sent
    assert baseline > 0

    for _ in range(3):
        cluster.stop_healing()
        cluster.start_healing()
    cluster.start_healing()  # a duplicate start must not stack either
    before = cluster.metrics.heartbeats_sent
    cluster.run(until=cluster.sim.now + window)
    delta = cluster.metrics.heartbeats_sent - before
    # A single stacked loop would push the rate toward 2x the baseline.
    assert delta <= baseline * 1.5, "lifecycle churn duplicated a loop"
    assert delta >= baseline * 0.5, "the loops stopped running entirely"

    cluster.stop_healing()
    cluster.run()  # wound-down loops drain; the simulator quiesces


def test_snapshot_scenario_is_deterministic():
    """Same seed, same faults => same snapshot transfer, chunk for
    chunk, and the same converged victim state."""
    seed = SEEDS[0]

    def probe():
        result = run_snapshot_scenario(seed, partition=True)
        metrics = result["cluster"].metrics
        return (
            result["fingerprint"],
            result["clocks"],
            result["floor"],
            metrics.snapshot_chunks,
            metrics.snapshot_chains,
            metrics.records_streamed,
        )

    assert probe() == probe()
