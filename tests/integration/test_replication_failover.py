"""Replication chaos battery: failover pairs bit-identical to controls.

The headline scenarios ISSUE 9 promised, each run as a control/faulty
pair under the PSI checkers:

* a primary crashed *mid-commit* (at its own prepare trace point, after
  the staged write has replicated but before its vote reaches the
  coordinator) loses zero acked commits and aborts nothing -- the racing
  commit parks, waits out the failover, and re-prepares against the
  promoted backup;
* a partition between a primary and its backup degrades sync-mode
  commits to async (counted, never blocking) without tricking a
  majority into a spurious failover, and the stream retransmits the
  backlog bit-verbatim after the heal;
* a backup crash-cycled across its own resync window closes and
  re-bootstraps its streams without disturbing foreground traffic;
* a double failure (a primary, then the freshest backup that had just
  been promoted in its place) with replication_factor=3 keeps every key
  writable and readable throughout;
* read-forwarding stays freshness-safe across a failover: backup-served
  reads keep flowing while the dead owner's shards promote, with every
  PSI checker green.

Fingerprints compare the *authoritative* state -- every key's chain at
its current directory owner -- because failover intentionally moves
ownership; version stamps are coordinator-assigned ``(origin, seq)``
pairs, so excluding the crash victims from coordinating (in both runs
of a pair) keeps the surviving chains bit-comparable.  Serialized
traffic with settle pauses keeps install order identical across paired
runs, exactly like the sharding and membership suites.

Seeds come from ``REPLICATION_SEEDS`` (comma-separated) so CI can sweep
a matrix without editing the file.
"""

import os

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    DurabilityConfig,
    NetworkConfig,
    ReplicationConfig,
    RpcConfig,
    ShardingConfig,
)
from repro.config import HealingConfig
from repro.faults import CRASH, FaultEvent, Nemesis
from repro.faults.schedules import (
    backup_lag_schedule,
    crash_cycle,
    failover_schedule,
    ordered,
)
from repro.metrics import check_no_read_skew, find_long_forks
from repro.sim.rng import make_rng

from tests.harness.recovery_tools import TracePoint

NUM_NODES = 3
NUM_KEYS = 12
NUM_SHARDS = 12

#: Per-commit settle pause (see test_sharding.py): long enough for a
#: commit's full fan-out -- including its replication records -- to
#: drain, keeping per-key install order identical across paired runs.
SETTLE = 1e-3

SEEDS = tuple(
    int(s) for s in os.environ.get("REPLICATION_SEEDS", "7,11").split(",")
)

pytestmark = pytest.mark.replication


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def build(
    seed,
    *,
    num_nodes=NUM_NODES,
    factor=2,
    failover=4e-3,
    read_from_backups=False,
    rpc=None,
    record_history=False,
):
    """A sharded, replicated FW-KV cluster with failover armed."""
    config = ClusterConfig(
        num_nodes=num_nodes,
        seed=seed,
        prepared_lease=5e-3,
        gc_enabled=False,
        network=NetworkConfig(
            jitter=5e-6,
            rpc=rpc or RpcConfig(request_timeout=1.5e-3, max_attempts=3),
        ),
        sharding=ShardingConfig(enabled=True, num_shards=NUM_SHARDS),
        replication=ReplicationConfig(
            enabled=True,
            replication_factor=factor,
            mode="sync",
            read_from_backups=read_from_backups,
            failover_timeout=failover,
        ),
        durability=DurabilityConfig(wal_enabled=False, termination_query=True),
        # Anti-entropy repairs the Propagate gap a restarted node slept
        # through (replication streams carry a primary's *writes*, not
        # the cluster-wide clock advances its reads must wait on).
        healing=HealingConfig(
            heartbeat_interval=1e-3, anti_entropy_interval=2e-3
        ),
    )
    cluster = Cluster("fwkv", config, record_history=record_history)
    for i in range(NUM_KEYS):
        cluster.load(f"k{i}", 0)
    return cluster, Nemesis(cluster)


def all_keys():
    return [f"k{i}" for i in range(NUM_KEYS)]


def rmw_plan(rng, coordinators, count):
    keys = all_keys()
    return [
        (coordinators[n % len(coordinators)], rng.sample(keys, 2))
        for n in range(count)
    ]


def drive(cluster, plan, committed=None, *, budget=None, read_only=False):
    """Run serialized ``(coordinator, keys)`` txns; all must commit.

    ``committed`` (txn_id -> keys) records every *acknowledged* write
    set, the ledger the lost-commit assertion audits afterwards.
    """
    outcomes = []

    def driver():
        for coordinator, keys in plan:
            node = cluster.node(coordinator)
            txn = node.begin(is_read_only=read_only)
            values = []
            for key in keys:
                values.append((yield from node.read(txn, key)))
            if not read_only:
                for key, value in zip(keys, values):
                    node.write(txn, key, value + 1)
            ok = yield from node.commit(txn)
            outcomes.append((ok, list(keys), values))
            if ok and not read_only and committed is not None:
                committed[txn.txn_id] = tuple(keys)
            yield cluster.sim.timeout(SETTLE)

    cluster.spawn(driver(), name="traffic")
    default = len(plan) * (SETTLE + 2e-3) + 10e-3
    cluster.run(until=cluster.sim.now + (budget or default))
    assert len(outcomes) == len(plan), "traffic driver did not finish in time"
    assert all(ok for ok, _, _ in outcomes), [
        o for o in outcomes if not o[0]
    ]
    return outcomes


def chain_tuples(node, key):
    if key not in node.store:
        return ()
    return tuple(
        (v.vid, v.origin, v.seq, v.value, v.vc.to_tuple(), v.writer_txn)
        for v in node.store.chain(key)
    )


def authoritative_fingerprint(cluster):
    """Every key's full chain at its *current* directory owner."""
    return {
        key: chain_tuples(cluster.node(cluster.directory.site(key)), key)
        for key in sorted(all_keys())
    }


def assert_backups_verbatim(cluster, *, skip=()):
    """Every live backup holds its primary's chains bit-for-bit."""
    for key in all_keys():
        owner = cluster.node(cluster.directory.site(key))
        reference = chain_tuples(owner, key)
        assert reference, key
        for backup in cluster.replication.backups_for_key(key):
            if backup in skip:
                continue
            assert chain_tuples(cluster.node(backup), key) == reference, key


def assert_no_lost_commits(cluster, committed):
    """Every acked write is installed at its key's current owner."""
    missing = []
    for txn_id, keys in sorted(committed.items()):
        for key in keys:
            owner = cluster.node(cluster.directory.site(key))
            chain = owner.store.chain(key) if key in owner.store else ()
            if not any(v.writer_txn == txn_id for v in chain):
                missing.append((txn_id, key))
    assert not missing, (
        f"{len(missing)} acked commit(s) lost across the failover: "
        f"{missing[:5]}"
    )


def settle(cluster, for_=10e-3):
    cluster.run(until=cluster.sim.now + for_)


# ----------------------------------------------------------------------
# Primary crashed mid-commit: the acceptance pair
# ----------------------------------------------------------------------
def run_primary_crash(seed, *, crash):
    """Traffic over a 2-copy cluster, with or without a mid-commit crash.

    The victim never coordinates (in either run), so every version stamp
    comes from a surviving coordinator and the pair stays bit-comparable.
    The crash lands at the victim's own ``prepare`` trace emit: the
    staged write has already replicated synchronously to its backup, but
    the vote reply is destroyed -- the worst instant for the racing
    commit, which must park, wait out the promotion, and re-prepare.
    """
    cluster, nemesis = build(seed)
    victim = 1
    coordinators = [0, 2]
    rng = make_rng(seed, "replication-chaos")
    committed = {}

    drive(cluster, rmw_plan(rng, coordinators, 10), committed)

    victim_keys = [
        k for k in all_keys() if cluster.directory.site(k) == victim
    ]
    assert victim_keys, "victim must own keys for the scenario to bite"

    point = None
    if crash:
        point = TracePoint(
            cluster,
            "prepare",
            lambda record: nemesis.apply(
                FaultEvent(cluster.sim.now, CRASH, victim)
            ),
            node=victim,
            count=2,
        )

    # Every even txn writes a victim-owned key, so prepares keep landing
    # at the victim until the trace point fires mid-commit.
    plan = [
        (
            coordinators[i % 2],
            [victim_keys[i % len(victim_keys)]]
            if i % 2 == 0
            else [all_keys()[(7 * i) % NUM_KEYS]],
        )
        for i in range(12)
    ]
    drive(cluster, plan, committed, budget=0.2)

    metrics = cluster.metrics
    if crash:
        assert point.fired, "the victim never reached the crash point"
        assert metrics.failovers_completed > 0
        assert not cluster.directory.shards_of(victim)
        assert metrics.backup_bootstraps >= 0
    assert metrics.aborts == 0, dict(metrics.aborts_by_reason)

    settle(cluster)
    assert_no_lost_commits(cluster, committed)
    assert_backups_verbatim(cluster, skip={victim} if crash else ())
    live = [n for n in cluster.nodes if n.node_id != victim or not crash]
    assert len({n.site_vc.to_tuple() for n in live}) == 1
    return authoritative_fingerprint(cluster)


@pytest.mark.parametrize("seed", SEEDS)
def test_primary_crash_mid_commit_loses_nothing(seed):
    """rf=2 sync: a primary crash mid-commit loses zero acked commits,
    aborts nothing, and converges bit-identically to a never-failed
    control."""
    faulty = run_primary_crash(seed, crash=True)
    control = run_primary_crash(seed, crash=False)
    assert faulty == control


def test_primary_crash_chaos_is_deterministic():
    seed = SEEDS[0]
    assert run_primary_crash(seed, crash=True) == run_primary_crash(
        seed, crash=True
    )


# ----------------------------------------------------------------------
# Partition between a primary and its backup
# ----------------------------------------------------------------------
def run_backup_partition(seed, *, partition):
    """Cut a primary/backup link mid-traffic; sync degrades, no failover.

    The partitioned pair can each still reach the third node, so neither
    loses a majority attestation and ownership must not move.  During
    the window only the unaffected node coordinates (both runs), keeping
    the pair's version stamps comparable while the degraded prepares
    exercise the sync-timeout path.
    """
    rpc = RpcConfig(request_timeout=4e-3, max_attempts=3)
    cluster, nemesis = build(seed, rpc=rpc)
    primary = 0
    primary_keys = [
        k for k in all_keys() if cluster.directory.site(k) == primary
    ]
    backup = cluster.replication.backups_for_key(primary_keys[0])[0]
    outsider = next(
        n for n in range(NUM_NODES) if n not in (primary, backup)
    )
    rng = make_rng(seed, "replication-lag")
    committed = {}

    drive(cluster, rmw_plan(rng, list(range(NUM_NODES)), 8), committed)

    window = 12e-3
    if partition:
        nemesis.start(
            backup_lag_schedule(primary, backup, cluster.sim.now, window)
        )
    # Writes to the primary's keys force its (cut) stream to carry the
    # sync wait; the outsider coordinates so 2PC itself never crosses
    # the partitioned link.
    lag_plan = [
        (outsider, [primary_keys[i % len(primary_keys)]]) for i in range(6)
    ]
    drive(cluster, lag_plan, committed, budget=0.1)
    settle(cluster, window)  # fully healed before the next phase

    drive(cluster, rmw_plan(rng, list(range(NUM_NODES)), 8), committed)
    settle(cluster)

    metrics = cluster.metrics
    if partition:
        assert metrics.replication_sync_degraded > 0, (
            "the cut stream must degrade at least one sync wait"
        )
        assert nemesis.heal_reports, "the window must have healed"
    assert metrics.failovers_completed == 0, (
        "a one-link partition must never trick a majority into failover"
    )
    assert metrics.aborts == 0, dict(metrics.aborts_by_reason)
    assert_no_lost_commits(cluster, committed)
    assert_backups_verbatim(cluster)  # backlog retransmitted post-heal
    assert len({n.site_vc.to_tuple() for n in cluster.nodes}) == 1
    return authoritative_fingerprint(cluster)


@pytest.mark.parametrize("seed", SEEDS)
def test_primary_backup_partition_degrades_then_converges(seed):
    faulty = run_backup_partition(seed, partition=True)
    control = run_backup_partition(seed, partition=False)
    assert faulty == control


# ----------------------------------------------------------------------
# Backup crash-cycled across its own resync
# ----------------------------------------------------------------------
def run_backup_crash(seed, *, crash):
    """Crash a backup twice in quick succession, the second landing in
    the repair/bootstrap window of the first; streams close, repair
    re-bootstraps, and the backup converges bit-verbatim."""
    cluster, nemesis = build(seed)
    primary = 0
    primary_keys = [
        k for k in all_keys() if cluster.directory.site(k) == primary
    ]
    backup = cluster.replication.backups_for_key(primary_keys[0])[0]
    coordinators = [n for n in range(NUM_NODES) if n != backup]
    rng = make_rng(seed, "replication-backup-crash")
    committed = {}

    drive(cluster, rmw_plan(rng, coordinators, 6), committed)

    if crash:
        t0 = cluster.sim.now
        nemesis.start(
            ordered(
                crash_cycle(backup, t0, 2e-3)
                + crash_cycle(backup, t0 + 2.5e-3, 2e-3)
            )
        )
    # Traffic against the primary's keys while its backup flaps: the
    # pump sees the dead peer and closes the stream; the repair loop
    # must re-bootstrap it after the final restart.
    flap_plan = [
        (coordinators[i % 2], [primary_keys[i % len(primary_keys)]])
        for i in range(8)
    ]
    drive(cluster, flap_plan, committed, budget=0.1)
    settle(cluster, 20e-3)

    drive(cluster, rmw_plan(rng, coordinators, 6), committed)
    settle(cluster)

    metrics = cluster.metrics
    if crash:
        assert metrics.backup_bootstraps >= 1, (
            "repair must re-bootstrap the crashed backup's streams"
        )
        assert nemesis.restart_count == 2
        assert [r[:2] for r in nemesis.promotion_reports] == [
            (backup, 0),
            (backup, 0),
        ], "a fast backup flap must not trigger promotions"
    assert metrics.failovers_completed == 0
    assert metrics.aborts == 0, dict(metrics.aborts_by_reason)
    assert_no_lost_commits(cluster, committed)
    assert_backups_verbatim(cluster)
    return authoritative_fingerprint(cluster)


@pytest.mark.parametrize("seed", SEEDS)
def test_backup_crash_during_resync_converges(seed):
    faulty = run_backup_crash(seed, crash=True)
    control = run_backup_crash(seed, crash=False)
    assert faulty == control


# ----------------------------------------------------------------------
# Double failure: the primary, then its freshest (promoted) backup
# ----------------------------------------------------------------------
def run_double_failure(seed, *, crash, second=None):
    """rf=3 on four nodes: crash a primary, then the successor that was
    just promoted in its place.  ``second`` pins the control run to the
    same coordinator exclusions as the faulty run that discovered it."""
    cluster, nemesis = build(seed, num_nodes=4, factor=3)
    first = 1
    rng = make_rng(seed, "replication-double")
    committed = {}

    coordinators = [n for n in range(4) if n != first]
    drive(cluster, rmw_plan(rng, coordinators, 8), committed)

    first_shards = cluster.directory.shards_of(first)
    assert first_shards
    if crash:
        nemesis.apply(FaultEvent(cluster.sim.now, CRASH, first))
        settle(cluster, 50e-3)
        assert not cluster.directory.shards_of(first)
        second = cluster.directory.owner_of(first_shards[0])
    assert second is not None and second not in (first,)

    coordinators = [n for n in range(4) if n not in (first, second)]
    drive(cluster, rmw_plan(rng, coordinators, 8), committed, budget=0.2)

    if crash:
        nemesis.apply(FaultEvent(cluster.sim.now, CRASH, second))
        settle(cluster, 50e-3)
        assert not cluster.directory.shards_of(second)

    drive(cluster, rmw_plan(rng, coordinators, 8), committed, budget=0.2)
    settle(cluster)

    metrics = cluster.metrics
    if crash:
        assert metrics.failovers_completed >= len(first_shards)
        survivors = set(range(4)) - {first, second}
        for key in all_keys():
            assert cluster.directory.site(key) in survivors
    assert metrics.aborts == 0, dict(metrics.aborts_by_reason)
    assert_no_lost_commits(cluster, committed)
    assert_backups_verbatim(
        cluster, skip={first, second} if crash else ()
    )
    return authoritative_fingerprint(cluster), second


@pytest.mark.parametrize("seed", SEEDS)
def test_double_failure_keeps_keys_alive(seed):
    faulty, second = run_double_failure(seed, crash=True)
    control, _ = run_double_failure(seed, crash=False, second=second)
    assert faulty == control


# ----------------------------------------------------------------------
# Read-forwarding stays freshness-safe across a failover
# ----------------------------------------------------------------------
def run_forwarded_reads(seed, *, crash):
    """RO traffic spread over backups while a primary dies mid-stream."""
    cluster, nemesis = build(seed, read_from_backups=True, record_history=True)
    victim = 1
    coordinators = [0, 2]
    rng = make_rng(seed, "replication-ro")
    committed = {}

    drive(cluster, rmw_plan(rng, coordinators, 10), committed)

    if crash:
        nemesis.start(failover_schedule(victim, cluster.sim.now + 5e-3))
    ro_plan = [
        (coordinators[i % 2], [all_keys()[(5 * i) % NUM_KEYS]])
        for i in range(24)
    ]
    reads = drive(cluster, ro_plan, read_only=True, budget=0.3)
    for ok, keys, values in reads:
        owner = cluster.node(cluster.directory.site(keys[0]))
        expected = [owner.store.chain(keys[0]).latest.value]
        assert ok and values == expected, (keys, values, expected)

    drive(cluster, rmw_plan(rng, coordinators, 6), committed, budget=0.2)
    settle(cluster)

    metrics = cluster.metrics
    assert metrics.backup_reads_served > 0
    assert metrics.aborts == 0, dict(metrics.aborts_by_reason)
    if crash:
        assert metrics.failovers_completed > 0
        assert not cluster.directory.shards_of(victim)
    assert_no_lost_commits(cluster, committed)

    history = cluster.finalized_history()
    assert check_no_read_skew(history).ok
    assert find_long_forks(history) == []
    return authoritative_fingerprint(cluster)


@pytest.mark.parametrize("seed", SEEDS)
def test_forwarded_reads_survive_failover(seed):
    faulty = run_forwarded_reads(seed, crash=True)
    control = run_forwarded_reads(seed, crash=False)
    assert faulty == control
