"""Batched vs unbatched Propagate/Remove must not change what commits.

Two levels of assurance:

* A *sequential* seeded scenario -- every transaction runs to cluster
  quiescence before the next starts -- must be bit-identical between
  batching on and off: same commit log, same per-node siteVC history at
  every quiescence point.  Sequential execution removes legitimate timing
  divergence (batching delays Propagate delivery, which under concurrency
  may reorder conflict races), leaving only the semantics of the messages
  themselves, which coalescing must preserve exactly.
* A *concurrent* seeded workload with aggressive windows must still pass
  the PSI checkers and quiesce cleanly -- batching may shift which
  transactions win races, never break consistency.
"""

import pytest

from repro import Cluster, ClusterConfig, NetworkConfig
from repro.cluster import ModuloDirectory
from repro.config import BatchingConfig
from repro.metrics import check_no_read_skew, check_site_order
from repro.sim.rng import make_rng

from tests.integration.scenario_tools import read_only_txn, update_txn

NODES = 3
KEYS = [f"k{i}" for i in range(9)]


def _make_cluster(batching, protocol):
    config = ClusterConfig(
        num_nodes=NODES,
        seed=21,
        batching=batching,
        network=NetworkConfig(jitter=0.0).with_propagate_delay(200e-6),
    )
    cluster = Cluster(
        protocol, config, directory=ModuloDirectory(NODES), record_history=True
    )
    for key in KEYS:
        cluster.load(key, 0)
    return cluster


def _commit_log(cluster):
    """The commit log as comparable tuples (ids, placement, ops, clocks)."""
    return [
        (
            r.txn_id,
            r.node_id,
            r.is_read_only,
            r.seq_no,
            r.commit_vc,
            tuple((op.kind, op.key, op.vid) for op in r.ops),
        )
        for r in cluster.finalized_history()
    ]


def _run_sequential(batching, protocol):
    """Seeded transaction sequence, each run to quiescence before the next.

    Returns ``(commit_log, site_vc_history)`` where the history holds every
    node's siteVC tuple at each quiescence point.
    """
    cluster = _make_cluster(batching, protocol)
    rng = make_rng(21, "batch-equiv")
    site_vc_history = []
    for round_no in range(30):
        node_id = rng.randrange(NODES)
        chosen = rng.sample(KEYS, 2)
        if rng.random() < 0.4:
            cluster.spawn(read_only_txn(cluster, node_id, chosen))
        else:
            cluster.spawn(
                update_txn(
                    cluster,
                    node_id,
                    {key: round_no for key in chosen},
                    reads=chosen,
                )
            )
        cluster.run()
        site_vc_history.append(tuple(cluster.site_clocks()))
    return _commit_log(cluster), site_vc_history


@pytest.mark.parametrize("protocol", ("fwkv", "walter"))
def test_sequential_runs_identical_batched_and_unbatched(protocol):
    baseline = _run_sequential(BatchingConfig(), protocol)
    batched = _run_sequential(
        BatchingConfig(propagate_window=300e-6, remove_flush_interval=1e-3),
        protocol,
    )
    assert batched[0] == baseline[0], "commit logs diverged"
    assert batched[1] == baseline[1], "per-node siteVC histories diverged"


def test_batched_propagate_coalesces_a_commit_window():
    """Several quick commits at one origin reach an uninvolved node as one
    Propagate carrying the whole window, and its snapshot still advances."""
    batching = BatchingConfig(propagate_window=2e-3)
    cluster = _make_cluster(batching, "fwkv")

    def burst():
        node = cluster.node(0)
        for i in range(4):
            while True:
                txn = node.begin(is_read_only=False)
                node.write(txn, "k0", i)  # k0 -> node 0, k2 -> node 2
                node.write(txn, "k2", i)
                ok = yield from node.commit(txn)
                if ok:
                    break
                # Validation can race this node's own async Decide apply;
                # let it land and retry.
                yield cluster.sim.timeout(100e-6)
            yield cluster.sim.timeout(100e-6)

    cluster.spawn(burst())
    cluster.run()
    # Node 1 was uninvolved in every commit; the window coalesced all four
    # sequence numbers yet its snapshot caught up completely.
    clocks = cluster.site_clocks()
    assert all(clock == clocks[0] for clock in clocks)
    assert clocks[1][0] == 4


@pytest.mark.parametrize("protocol", ("fwkv", "walter"))
def test_concurrent_batched_run_stays_consistent(protocol):
    batching = BatchingConfig(propagate_window=400e-6, remove_flush_interval=2e-3)
    cluster = _make_cluster(batching, protocol)
    seed = cluster.config.seed

    def client(node_id, client_id):
        rng = make_rng(seed, "batch-conc", node_id, client_id)
        node = cluster.node(node_id)
        for _ in range(40):
            chosen = rng.sample(KEYS, 2)
            read_only = rng.random() < 0.4
            while True:
                txn = node.begin(is_read_only=read_only)
                values = []
                for key in chosen:
                    value = yield from node.read(txn, key)
                    values.append(value)
                if not read_only:
                    for key, value in zip(chosen, values):
                        node.write(txn, key, value + 1)
                ok = yield from node.commit(txn)
                if ok:
                    break
                yield cluster.sim.timeout(rng.uniform(50e-6, 150e-6))
            yield cluster.sim.timeout(rng.uniform(0, 100e-6))

    for node_id in range(NODES):
        for client_id in range(2):
            cluster.spawn(client(node_id, client_id))
    cluster.run()

    history = cluster.finalized_history()
    assert len(history) >= 240
    skew = check_no_read_skew(history)
    assert skew.ok, skew.violations[:3]
    order = check_site_order(history, cluster.version_catalog())
    assert order.ok, order.violations[:3]
    assert not cluster.any_locks_held()
    assert cluster.total_vas_entries() == 0
    clocks = cluster.site_clocks()
    assert all(clock == clocks[0] for clock in clocks)
