"""Tests for the parallel multi-get API (read-only transactions)."""

import pytest

from repro.metrics import check_no_read_skew
from tests.integration.scenario_tools import make_cluster, update_txn

PLACEMENT = {"a": 0, "b": 1, "c": 2}
INITIAL = {"a": 1, "b": 2, "c": 3}


def test_read_many_returns_all_values():
    cluster = make_cluster("fwkv", 3, PLACEMENT, initial=INITIAL)

    def proc():
        node = cluster.node(0)
        txn = node.begin(is_read_only=True)
        values = yield from node.read_many(txn, ["a", "b", "c"])
        ok = yield from node.commit(txn)
        return values, ok, cluster.sim.now

    values, ok, elapsed = cluster.run_process(proc())
    assert values == INITIAL
    assert ok
    # Parallel: three reads cost roughly one round trip, not three.
    assert elapsed < 150e-6


def test_read_many_faster_than_sequential():
    def run(parallel):
        cluster = make_cluster("fwkv", 3, PLACEMENT, initial=INITIAL)

        def proc():
            node = cluster.node(0)
            txn = node.begin(is_read_only=True)
            if parallel:
                yield from node.read_many(txn, ["a", "b", "c"])
            else:
                for key in ("a", "b", "c"):
                    yield from node.read(txn, key)
            yield from node.commit(txn)
            return cluster.sim.now

        return cluster.run_process(proc())

    assert run(parallel=True) < run(parallel=False)


def test_read_many_rejects_update_transactions():
    cluster = make_cluster("fwkv", 3, PLACEMENT, initial=INITIAL)
    node = cluster.node(0)
    txn = node.begin(is_read_only=False)
    with pytest.raises(ValueError, match="read-only"):
        # Generators raise on first advance.
        gen = node.read_many(txn, ["a"])
        next(gen)


def test_read_many_uses_cache_and_mixes_with_read():
    cluster = make_cluster("walter", 3, PLACEMENT, initial=INITIAL)

    def proc():
        node = cluster.node(0)
        txn = node.begin(is_read_only=True)
        first = yield from node.read(txn, "a")
        values = yield from node.read_many(txn, ["a", "b"])
        yield from node.commit(txn)
        return first, values

    first, values = cluster.run_process(proc())
    assert first == 1
    assert values == {"a": 1, "b": 2}


def test_read_many_consistency_under_concurrent_update():
    """An update landing between the parallel reads cannot fracture the
    snapshot: the VAS machinery hides its writes from this reader."""
    placement = {"x": 1, "y": 2}
    cluster = make_cluster(
        "fwkv", 3, placement, initial={"x": 0, "y": 0}, record_history=True
    )
    results = []

    def reader(delay):
        yield cluster.sim.timeout(delay)
        node = cluster.node(0)
        txn = node.begin(is_read_only=True)
        values = yield from node.read_many(txn, ["x", "y"])
        yield from node.commit(txn)
        results.append(values)

    def churn():
        for i in range(1, 15):
            while True:
                ok, _ = yield from update_txn(
                    cluster, (i % 2) + 1, writes={"x": i, "y": i}
                )
                if ok:
                    break
                yield cluster.sim.timeout(30e-6)
            yield cluster.sim.timeout(20e-6)

    cluster.spawn(churn())
    for i in range(10):
        cluster.spawn(reader(delay=i * 35e-6))
    cluster.run()

    assert len(results) == 10
    for values in results:
        assert values["x"] == values["y"], (
            f"fractured multi-get snapshot: {values}"
        )
    assert check_no_read_skew(cluster.finalized_history()).ok
