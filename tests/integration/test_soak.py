"""Soak test: everything on at once, for longer, checked afterwards.

GC reclaiming versions, Removes batching and tombstoning, delayed
propagation stalling reads and aborting Walter-style writers, retries,
and the full PSI checker over the recorded history.
"""

import pytest

from repro import Cluster, ClusterConfig, NetworkConfig
from repro.cluster import ModuloDirectory
from repro.metrics import check_no_read_skew, check_site_order
from repro.sim.rng import make_rng


def run_soak(protocol, seed=11):
    config = ClusterConfig(
        num_nodes=3,
        seed=seed,
        network=NetworkConfig().with_propagate_delay(300e-6),
        gc_trigger_length=10,
        gc_keep_versions=5,
        gc_min_age=3e-3,
    )
    cluster = Cluster(
        protocol, config, directory=ModuloDirectory(3), record_history=True
    )
    keys = [f"k{i}" for i in range(12)]
    for key in keys:
        cluster.load(key, 0)

    def client(node_id, client_id):
        rng = make_rng(seed, "soak", node_id, client_id)
        node = cluster.node(node_id)
        for _ in range(60):
            chosen = rng.sample(keys, 2)
            read_only = rng.random() < 0.4
            while True:
                txn = node.begin(is_read_only=read_only)
                values = []
                for key in chosen:
                    value = yield from node.read(txn, key)
                    values.append(value)
                if not read_only:
                    for key, value in zip(chosen, values):
                        node.write(txn, key, value + 1)
                ok = yield from node.commit(txn)
                if ok:
                    break
                yield cluster.sim.timeout(rng.uniform(50e-6, 150e-6))
            yield cluster.sim.timeout(rng.uniform(0, 100e-6))

    for node_id in range(3):
        for client_id in range(2):
            cluster.spawn(client(node_id, client_id))
    cluster.run()
    return cluster


@pytest.mark.parametrize("protocol", ("fwkv", "walter"))
def test_soak_consistency_with_gc_and_delay(protocol):
    cluster = run_soak(protocol)
    history = cluster.finalized_history()
    assert len(history) >= 360

    # GC actually fired (12 hot keys, hundreds of overwrites).
    assert cluster.metrics.versions_reclaimed > 0

    skew = check_no_read_skew(history)
    assert skew.ok, skew.violations[:3]
    order = check_site_order(history, cluster.version_catalog())
    assert order.ok, order.violations[:3]

    # Quiescence hygiene.
    assert not cluster.any_locks_held()
    assert cluster.total_vas_entries() == 0
    clocks = cluster.site_clocks()
    assert all(clock == clocks[0] for clock in clocks)


def test_soak_increment_conservation():
    """Total value across keys equals 2x committed update transactions."""
    cluster = run_soak("fwkv", seed=12)
    committed_updates = len(cluster.finalized_history().committed_updates())
    total = 0
    for node in cluster.nodes:
        for key in node.store.keys():
            total += node.store.chain(key).latest.value
    assert total == 2 * committed_updates
