"""Nemesis stress: random per-link congestion, all safety checks hold.

Each (src, dst) link gets an independent random extra delay for Propagate
traffic (0-2 ms), producing the wildly asymmetric propagation orders that
Figure 1-style anomalies feed on -- plus GC and the paper-literal Remove
scope for maximum adversity.  Histories must still be free of fractured
reads and per-origin order violations.
"""

import pytest

from repro import Cluster, ClusterConfig, NetworkConfig
from repro.cluster import ModuloDirectory
from repro.metrics import check_no_read_skew, check_site_order
from repro.net.message import MessageType
from repro.sim.rng import make_rng

NUM_NODES = 4
NUM_KEYS = 16


def build(protocol, seed):
    config = ClusterConfig(
        num_nodes=NUM_NODES,
        seed=seed,
        network=NetworkConfig(jitter=5e-6),
        remove_broadcast=False,  # paper-literal cleanup
        gc_trigger_length=12,
        gc_keep_versions=6,
        gc_min_age=4e-3,
    )
    cluster = Cluster(
        protocol, config, directory=ModuloDirectory(NUM_NODES),
        record_history=True,
    )
    rng = make_rng(seed, "nemesis-links")
    link_delay = {
        (src, dst): rng.uniform(0, 2e-3)
        for src in range(NUM_NODES)
        for dst in range(NUM_NODES)
        if src != dst
    }

    def delay_policy(envelope):
        if envelope.msg_type == MessageType.PROPAGATE:
            return link_delay[(envelope.src, envelope.dst)]
        return 0.0

    cluster.network.delay_policy = delay_policy
    for i in range(NUM_KEYS):
        cluster.load(f"k{i}", 0)
    return cluster


def client(cluster, node_id, client_id, seed, txns=40):
    rng = make_rng(seed, "nemesis-client", node_id, client_id)
    node = cluster.node(node_id)
    keys = [f"k{i}" for i in range(NUM_KEYS)]
    for _ in range(txns):
        chosen = rng.sample(keys, 2)
        read_only = rng.random() < 0.5
        while True:
            txn = node.begin(is_read_only=read_only)
            values = []
            for key in chosen:
                value = yield from node.read(txn, key)
                values.append(value)
            if not read_only:
                for key, value in zip(chosen, values):
                    node.write(txn, key, value + 1)
            ok = yield from node.commit(txn)
            if ok:
                break
            yield cluster.sim.timeout(rng.uniform(50e-6, 250e-6))
        yield cluster.sim.timeout(rng.uniform(0, 100e-6))


@pytest.mark.parametrize("protocol", ("fwkv", "walter"))
@pytest.mark.parametrize("seed", (21, 22))
def test_nemesis_safety(protocol, seed):
    cluster = build(protocol, seed)
    for node_id in range(NUM_NODES):
        for client_id in range(2):
            cluster.spawn(client(cluster, node_id, client_id, seed))
    cluster.run()

    history = cluster.finalized_history()
    assert len(history) >= NUM_NODES * 2 * 40

    skew = check_no_read_skew(history)
    assert skew.ok, skew.violations[:3]
    order = check_site_order(history, cluster.version_catalog())
    assert order.ok, order.violations[:3]

    # Increment conservation (no lost updates, despite the chaos).
    committed_updates = len(history.committed_updates())
    total = sum(
        node.store.chain(key).latest.value
        for node in cluster.nodes
        for key in node.store.keys()
    )
    assert total == 2 * committed_updates

    assert not cluster.any_locks_held()
    clocks = cluster.site_clocks()
    assert all(clock == clocks[0] for clock in clocks)
