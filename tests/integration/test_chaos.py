"""Chaos suite: nemesis-driven crashes and partitions, safety must hold.

These tests deliberately break the paper's reliable-channel assumption
(Section 2.1) and check graceful degradation instead of liveness: under
crash-during-prepare, coordinator-crash, and partition-then-heal
schedules, transactions may abort or lose updates, but

* no history ever shows a fractured read or a per-origin order violation,
* the cluster quiesces with no lock held anywhere,
* no RPC endpoint leaks a pending request slot,

for all three protocols.  A final test pins down that a faulty run is a
pure function of its seed -- identical seeds give identical histories and
network statistics even with random loss and duplication enabled.
"""

import pytest

from repro import Cluster, ClusterConfig, NetworkConfig, RpcConfig
from repro.cluster import ModuloDirectory
from repro.faults import Nemesis, crash_cycle, partition_cycle
from repro.metrics import check_no_read_skew, check_site_order
from repro.net.rpc import RpcTimeoutError
from repro.sim.rng import make_rng

NUM_NODES = 4
NUM_KEYS = 16
CLIENTS_PER_NODE = 2
TXNS_PER_CLIENT = 20
#: A client abandons a transaction after this many timed-out/aborted
#: attempts; under a long-lived fault giving up is the only way to finish.
MAX_TXN_ATTEMPTS = 6

#: Faults strike while the workload is in full swing and heal well before
#: the (bounded) clients run out of transactions to inject.
FAULT_AT = 3e-3
FAULT_DURATION = 5e-3

SCHEDULES = {
    "participant_crash": crash_cycle(1, FAULT_AT, FAULT_DURATION),
    "coordinator_crash": crash_cycle(0, FAULT_AT, FAULT_DURATION),
    "partition_heal": partition_cycle(0, 2, FAULT_AT, FAULT_DURATION),
}

PROTOCOLS = ("fwkv", "walter", "2pc")


def build(protocol, seed, loss_rate=0.0, duplicate_rate=0.0):
    config = ClusterConfig(
        num_nodes=NUM_NODES,
        seed=seed,
        prepared_lease=5e-3,
        network=NetworkConfig(
            jitter=5e-6,
            loss_rate=loss_rate,
            duplicate_rate=duplicate_rate,
            rpc=RpcConfig(request_timeout=1.5e-3, max_attempts=3),
        ),
    )
    cluster = Cluster(
        protocol, config, directory=ModuloDirectory(NUM_NODES),
        record_history=True,
    )
    for i in range(NUM_KEYS):
        cluster.load(f"k{i}", 0)
    return cluster


def chaos_client(cluster, node_id, client_id, seed, txns=TXNS_PER_CLIENT):
    """A closed-loop client that survives fault-induced RPC timeouts.

    Unlike the fault-free nemesis client, every attempt is bounded: a read
    or commit whose retries are exhausted raises RpcTimeoutError, the
    transaction is rolled back, and after MAX_TXN_ATTEMPTS the client
    abandons the transaction entirely so the run always quiesces.
    """
    rng = make_rng(seed, "chaos-client", node_id, client_id)
    node = cluster.node(node_id)
    keys = [f"k{i}" for i in range(NUM_KEYS)]
    for _ in range(txns):
        chosen = rng.sample(keys, 2)
        read_only = rng.random() < 0.4
        for _attempt in range(MAX_TXN_ATTEMPTS):
            txn = node.begin(is_read_only=read_only)
            try:
                values = []
                for key in chosen:
                    value = yield from node.read(txn, key)
                    values.append(value)
                if not read_only:
                    for key, value in zip(chosen, values):
                        node.write(txn, key, value + 1)
                ok = yield from node.commit(txn)
            except RpcTimeoutError:
                node.abort(txn)
                ok = False
            if ok:
                break
            yield cluster.sim.timeout(rng.uniform(50e-6, 250e-6))
        yield cluster.sim.timeout(rng.uniform(0, 100e-6))


def run_chaos(protocol, schedule, seed, loss_rate=0.0, duplicate_rate=0.0):
    cluster = build(
        protocol, seed, loss_rate=loss_rate, duplicate_rate=duplicate_rate
    )
    nemesis = Nemesis(cluster)
    nemesis.start(schedule)
    for node_id in range(NUM_NODES):
        for client_id in range(CLIENTS_PER_NODE):
            cluster.spawn(
                chaos_client(cluster, node_id, client_id, seed),
                name=f"chaos-client-{node_id}-{client_id}",
            )
    cluster.run()
    assert len(nemesis.applied) == len(schedule)
    return cluster


def assert_safe_and_quiescent(cluster):
    """The graceful-degradation contract every chaotic run must honour."""
    # No lock survives quiescence: coordinator presumed-abort plus the
    # participant prepared-lock lease must have reclaimed everything.
    assert not cluster.any_locks_held()
    # No RPC endpoint leaks pending request slots (timeouts retire them,
    # stale replies are dropped rather than matched).
    for protocol_node in cluster.nodes:
        assert protocol_node.node.rpc.pending_count == 0
    history = cluster.finalized_history()
    # The fault window must not have starved the run entirely.
    assert len(history) > NUM_NODES * CLIENTS_PER_NODE
    skew = check_no_read_skew(history)
    assert skew.ok, skew.violations[:3]
    order = check_site_order(history, cluster.version_catalog())
    assert order.ok, order.violations[:3]


@pytest.mark.chaos
@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("schedule_name", sorted(SCHEDULES))
def test_chaos_safety(protocol, schedule_name):
    cluster = run_chaos(protocol, SCHEDULES[schedule_name], seed=31)
    assert_safe_and_quiescent(cluster)


@pytest.mark.chaos
def test_crash_produces_timeout_aborts():
    """A mid-run crash surfaces as presumed-abort accounting, not wedging."""
    cluster = run_chaos("fwkv", SCHEDULES["participant_crash"], seed=32)
    assert_safe_and_quiescent(cluster)
    stats = cluster.network.stats
    assert stats.drops_by_reason["crash"] > 0
    assert stats.rpc_timeouts > 0
    assert cluster.metrics.aborted_timeout > 0


@pytest.mark.chaos
def test_partition_drops_then_heals():
    cluster = run_chaos("fwkv", SCHEDULES["partition_heal"], seed=33)
    assert_safe_and_quiescent(cluster)
    assert cluster.network.stats.drops_by_reason["partition"] > 0
    # Healed: no directed link is cut at the end of the run.
    for a in range(NUM_NODES):
        for b in range(NUM_NODES):
            assert not cluster.network.is_partitioned(a, b)


def history_fingerprint(cluster):
    return [
        (
            record.txn_id,
            record.node_id,
            record.is_read_only,
            record.start_time,
            record.end_time,
            [(op.kind, op.key, op.vid, op.latest_vid_at_read)
             for op in record.ops],
        )
        for record in cluster.finalized_history()
    ]


@pytest.mark.chaos
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_chaos_runs_are_deterministic(protocol):
    """Same seed, same faults, same history -- loss and duplication too."""
    runs = [
        run_chaos(
            protocol,
            SCHEDULES["partition_heal"],
            seed=34,
            loss_rate=0.02,
            duplicate_rate=0.02,
        )
        for _ in range(2)
    ]
    first, second = runs
    assert history_fingerprint(first) == history_fingerprint(second)
    assert first.network.stats == second.network.stats
    assert first.metrics.summary() == second.metrics.summary()
    assert first.network.stats.drops_by_reason["loss"] > 0
    assert first.network.stats.messages_duplicated > 0
