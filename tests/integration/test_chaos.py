"""Chaos suite: nemesis-driven crashes and partitions, safety must hold.

These tests deliberately break the paper's reliable-channel assumption
(Section 2.1) and check graceful degradation instead of liveness: under
crash-during-prepare, coordinator-crash, and partition-then-heal
schedules, transactions may abort or lose updates, but

* no history ever shows a fractured read or a per-origin order violation,
* the cluster quiesces with no lock held anywhere,
* no RPC endpoint leaks a pending request slot,

for all three protocols.  A final test pins down that a faulty run is a
pure function of its seed -- identical seeds give identical histories and
network statistics even with random loss and duplication enabled.
"""

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    DurabilityConfig,
    NetworkConfig,
    RpcConfig,
)
from repro.cluster import ModuloDirectory
from repro.faults import Nemesis, crash_cycle, durable_crash_cycle, partition_cycle
from repro.faults.schedules import HEAL, PARTITION, FaultEvent
from repro.metrics import check_no_read_skew, check_site_order
from repro.net.rpc import RpcTimeoutError
from repro.sim.rng import make_rng

from tests.harness.recovery_tools import TracePoint, assert_no_lost_commits

NUM_NODES = 4
NUM_KEYS = 16
CLIENTS_PER_NODE = 2
TXNS_PER_CLIENT = 20
#: A client abandons a transaction after this many timed-out/aborted
#: attempts; under a long-lived fault giving up is the only way to finish.
MAX_TXN_ATTEMPTS = 6

#: Faults strike while the workload is in full swing and heal well before
#: the (bounded) clients run out of transactions to inject.
FAULT_AT = 3e-3
FAULT_DURATION = 5e-3

SCHEDULES = {
    "participant_crash": crash_cycle(1, FAULT_AT, FAULT_DURATION),
    "coordinator_crash": crash_cycle(0, FAULT_AT, FAULT_DURATION),
    "partition_heal": partition_cycle(0, 2, FAULT_AT, FAULT_DURATION),
}

PROTOCOLS = ("fwkv", "walter", "2pc")


def build(
    protocol,
    seed,
    loss_rate=0.0,
    duplicate_rate=0.0,
    durability=None,
    gc_enabled=True,
):
    config = ClusterConfig(
        num_nodes=NUM_NODES,
        seed=seed,
        prepared_lease=5e-3,
        durability=durability or DurabilityConfig(),
        gc_enabled=gc_enabled,
        network=NetworkConfig(
            jitter=5e-6,
            loss_rate=loss_rate,
            duplicate_rate=duplicate_rate,
            rpc=RpcConfig(request_timeout=1.5e-3, max_attempts=3),
        ),
    )
    cluster = Cluster(
        protocol, config, directory=ModuloDirectory(NUM_NODES),
        record_history=True,
    )
    for i in range(NUM_KEYS):
        cluster.load(f"k{i}", 0)
    return cluster


def chaos_client(
    cluster, node_id, client_id, seed, txns=TXNS_PER_CLIENT, committed=None
):
    """A closed-loop client that survives fault-induced RPC timeouts.

    Unlike the fault-free nemesis client, every attempt is bounded: a read
    or commit whose retries are exhausted raises RpcTimeoutError, the
    transaction is rolled back, and after MAX_TXN_ATTEMPTS the client
    abandons the transaction entirely so the run always quiesces.
    """
    rng = make_rng(seed, "chaos-client", node_id, client_id)
    node = cluster.node(node_id)
    keys = [f"k{i}" for i in range(NUM_KEYS)]
    for _ in range(txns):
        chosen = rng.sample(keys, 2)
        read_only = rng.random() < 0.4
        for _attempt in range(MAX_TXN_ATTEMPTS):
            txn = node.begin(is_read_only=read_only)
            try:
                values = []
                for key in chosen:
                    value = yield from node.read(txn, key)
                    values.append(value)
                if not read_only:
                    for key, value in zip(chosen, values):
                        node.write(txn, key, value + 1)
                ok = yield from node.commit(txn)
            except RpcTimeoutError:
                node.abort(txn)
                ok = False
            if ok:
                # The client is co-located with its node: an ack observed
                # while the node is crash-stopped never reached a live
                # client, so it does not count as a durability promise.
                if (
                    committed is not None
                    and not read_only
                    and not cluster.network.is_crashed(node_id)
                ):
                    committed[txn.txn_id] = list(chosen)
                break
            yield cluster.sim.timeout(rng.uniform(50e-6, 250e-6))
        yield cluster.sim.timeout(rng.uniform(0, 100e-6))


def run_chaos(protocol, schedule, seed, loss_rate=0.0, duplicate_rate=0.0):
    cluster = build(
        protocol, seed, loss_rate=loss_rate, duplicate_rate=duplicate_rate
    )
    nemesis = Nemesis(cluster)
    nemesis.start(schedule)
    for node_id in range(NUM_NODES):
        for client_id in range(CLIENTS_PER_NODE):
            cluster.spawn(
                chaos_client(cluster, node_id, client_id, seed),
                name=f"chaos-client-{node_id}-{client_id}",
            )
    cluster.run()
    assert len(nemesis.applied) == len(schedule)
    return cluster


def assert_safe_and_quiescent(cluster):
    """The graceful-degradation contract every chaotic run must honour."""
    # No lock survives quiescence: coordinator presumed-abort plus the
    # participant prepared-lock lease must have reclaimed everything.
    assert not cluster.any_locks_held()
    # No RPC endpoint leaks pending request slots (timeouts retire them,
    # stale replies are dropped rather than matched).
    for protocol_node in cluster.nodes:
        assert protocol_node.node.rpc.pending_count == 0
    history = cluster.finalized_history()
    # The fault window must not have starved the run entirely.
    assert len(history) > NUM_NODES * CLIENTS_PER_NODE
    skew = check_no_read_skew(history)
    assert skew.ok, skew.violations[:3]
    order = check_site_order(history, cluster.version_catalog())
    assert order.ok, order.violations[:3]


@pytest.mark.chaos
@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("schedule_name", sorted(SCHEDULES))
def test_chaos_safety(protocol, schedule_name):
    cluster = run_chaos(protocol, SCHEDULES[schedule_name], seed=31)
    assert_safe_and_quiescent(cluster)


@pytest.mark.chaos
def test_crash_produces_timeout_aborts():
    """A mid-run crash surfaces as presumed-abort accounting, not wedging."""
    cluster = run_chaos("fwkv", SCHEDULES["participant_crash"], seed=32)
    assert_safe_and_quiescent(cluster)
    stats = cluster.network.stats
    assert stats.drops_by_reason["crash"] > 0
    assert stats.rpc_timeouts > 0
    assert cluster.metrics.aborted_timeout > 0


@pytest.mark.chaos
def test_partition_drops_then_heals():
    cluster = run_chaos("fwkv", SCHEDULES["partition_heal"], seed=33)
    assert_safe_and_quiescent(cluster)
    assert cluster.network.stats.drops_by_reason["partition"] > 0
    # Healed: no directed link is cut at the end of the run.
    for a in range(NUM_NODES):
        for b in range(NUM_NODES):
            assert not cluster.network.is_partitioned(a, b)


def history_fingerprint(cluster):
    return [
        (
            record.txn_id,
            record.node_id,
            record.is_read_only,
            record.start_time,
            record.end_time,
            [(op.kind, op.key, op.vid, op.latest_vid_at_read)
             for op in record.ops],
        )
        for record in cluster.finalized_history()
    ]


@pytest.mark.chaos
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_chaos_runs_are_deterministic(protocol):
    """Same seed, same faults, same history -- loss and duplication too."""
    runs = [
        run_chaos(
            protocol,
            SCHEDULES["partition_heal"],
            seed=34,
            loss_rate=0.02,
            duplicate_rate=0.02,
        )
        for _ in range(2)
    ]
    first, second = runs
    assert history_fingerprint(first) == history_fingerprint(second)
    assert first.network.stats == second.network.stats
    assert first.metrics.summary() == second.metrics.summary()
    assert first.network.stats.drops_by_reason["loss"] > 0
    assert first.network.stats.messages_duplicated > 0


# ----------------------------------------------------------------------
# In-doubt termination: the presumed-abort window, demonstrated and closed
# ----------------------------------------------------------------------
def run_indoubt_decide_loss(termination):
    """Commit a cross-site transaction whose Decide is destroyed.

    A directed partition (coordinator -> participant) is installed at the
    participant's own prepare point -- the yes-vote still travels the
    reverse link, so the coordinator commits and its Decide drops.  The
    link heals well before the participant's prepared-lock lease fires,
    so the coordinator is alive and reachable when the participant must
    decide what to do with its in-doubt prepare.
    """
    cluster = build(
        "fwkv",
        seed=35,
        durability=DurabilityConfig(termination_query=termination),
    )
    nemesis = Nemesis(cluster)
    sites = {}
    for i in range(NUM_KEYS):
        key = f"k{i}"
        sites.setdefault(cluster.directory.site(key), []).append(key)
    keys = [sites[0][0], sites[1][0]]  # coordinator 0, participant 1

    def cut_then_heal(_record):
        nemesis.apply(FaultEvent(cluster.sim.now, PARTITION, 0, 1))
        cluster.sim.call_later(
            2e-3,
            lambda: nemesis.apply(
                FaultEvent(cluster.sim.now, HEAL, 0, 1)
            ),
        )

    point = TracePoint(cluster, "prepare", cut_then_heal, node=1)

    def process():
        node = cluster.node(0)
        txn = node.begin(is_read_only=False)
        values = []
        for key in keys:
            values.append((yield from node.read(txn, key)))
        for key, value in zip(keys, values):
            node.write(txn, key, value + 1)
        ok = yield from node.commit(txn)
        return ok, txn

    ok, txn = cluster.run_process(process())
    assert point.fired
    assert ok  # the coordinator decided commit and acked the client
    return cluster, txn, keys


def committed_at(cluster, key, txn_id):
    node = cluster.nodes[cluster.directory.site(key)]
    return any(v.writer_txn == txn_id for v in node.store.chain(key))


@pytest.mark.chaos
def test_presumed_abort_drops_committed_write_without_termination():
    """The historical bug, pinned down: with the default unilateral
    lease expiry, a committed transaction's writes vanish at the
    participant that never heard the Decide."""
    cluster, txn, keys = run_indoubt_decide_loss(termination=False)
    coordinator_key, participant_key = keys
    assert committed_at(cluster, coordinator_key, txn.txn_id)
    assert not committed_at(cluster, participant_key, txn.txn_id)
    assert cluster.metrics.lease_expirations == 1
    assert not cluster.any_locks_held()


@pytest.mark.chaos
def test_termination_query_preserves_committed_write():
    """With ``durability.termination_query`` the participant asks the
    coordinator instead of presuming abort, and installs the writes."""
    cluster, txn, keys = run_indoubt_decide_loss(termination=True)
    for key in keys:
        assert committed_at(cluster, key, txn.txn_id)
    assert cluster.metrics.indoubt_committed == 1
    assert cluster.metrics.lease_expirations == 0
    assert not cluster.any_locks_held()
    for protocol_node in cluster.nodes:
        assert protocol_node.node.rpc.pending_count == 0


# ----------------------------------------------------------------------
# Durable crash under a concurrent workload
# ----------------------------------------------------------------------
@pytest.mark.chaos
@pytest.mark.recovery
@pytest.mark.parametrize("protocol", ("fwkv", "walter"))
def test_chaos_durable_crash_no_lost_commits(protocol):
    """A mid-workload durable crash (prepares in flight, coordinator
    alive) must not drop any acknowledged write at any site."""
    schedule = durable_crash_cycle(1, FAULT_AT, FAULT_DURATION)
    cluster = build(
        protocol,
        seed=36,
        durability=DurabilityConfig(wal_enabled=True, termination_query=True),
        gc_enabled=False,  # assert_no_lost_commits scans full chains
    )
    nemesis = Nemesis(cluster)
    nemesis.start(schedule)
    committed = {}
    for node_id in range(NUM_NODES):
        for client_id in range(CLIENTS_PER_NODE):
            cluster.spawn(
                chaos_client(
                    cluster, node_id, client_id, 36, committed=committed
                ),
                name=f"chaos-client-{node_id}-{client_id}",
            )
    cluster.run()

    assert len(nemesis.applied) == len(schedule)
    assert_safe_and_quiescent(cluster)
    assert nemesis.restart_count == 1
    window = nemesis.down_windows[0]
    assert window.closed and window.node == 1
    assert cluster.nodes[1].recoveries == 1
    assert cluster.metrics.recoveries == 1
    assert committed
    assert_no_lost_commits(cluster, committed)
    clocks = cluster.site_clocks()
    assert all(clock == clocks[0] for clock in clocks)
