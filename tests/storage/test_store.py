"""Unit tests for version chains and the multi-version store."""

import pytest

from repro.core import VectorClock
from repro.storage import MultiVersionStore, VersionChain


def vc(*entries):
    return VectorClock(entries)


def test_install_assigns_dense_vids():
    chain = VersionChain("x")
    v0 = chain.install("a", vc(0, 0), origin=0, seq=0)
    v1 = chain.install("b", vc(1, 0), origin=0, seq=1)
    v2 = chain.install("c", vc(1, 1), origin=1, seq=1)
    assert [v.vid for v in chain] == [0, 1, 2]
    assert chain.latest is v2
    assert list(chain.newest_first()) == [v2, v1, v0]


def test_empty_chain_has_no_latest():
    chain = VersionChain("x")
    with pytest.raises(LookupError):
        _ = chain.latest


def test_by_vid_lookup():
    chain = VersionChain("x")
    chain.install("a", vc(0), 0, 0)
    chain.install("b", vc(1), 0, 1)
    assert chain.by_vid(0).value == "a"
    assert chain.by_vid(1).value == "b"
    with pytest.raises(LookupError):
        chain.by_vid(5)


def test_truncate_keeps_newest():
    chain = VersionChain("x")
    for i in range(5):
        chain.install(i, vc(i), 0, i)
    dropped = chain.truncate_older_than(keep_last=2)
    assert dropped == 3
    assert [v.value for v in chain] == [3, 4]
    assert chain.latest.vid == 4
    with pytest.raises(ValueError):
        chain.truncate_older_than(0)


def test_store_create_and_duplicate_rejected():
    store = MultiVersionStore()
    store.create("x", "init", vc(0, 0))
    assert "x" in store
    assert len(store) == 1
    with pytest.raises(KeyError):
        store.create("x", "again", vc(0, 0))


def test_store_chain_missing_key():
    store = MultiVersionStore()
    with pytest.raises(KeyError):
        store.chain("ghost")


def test_store_install_appends_to_chain():
    store = MultiVersionStore()
    store.create("x", "init", vc(0, 0))
    version = store.install("x", "new", vc(1, 0), origin=0, seq=1)
    assert store.chain("x").latest is version
    assert version.vid == 1


def test_vas_add_and_remove_round_trip():
    store = MultiVersionStore()
    v0 = store.create("x", "init", vc(0, 0))
    v1 = store.install("x", "new", vc(1, 0), 0, 1)
    store.vas_add(v0, 101)
    store.vas_extend(v1, {101, 202})
    assert v0.access_set == {101}
    assert v1.access_set == {101, 202}
    assert store.vas_total_entries() == 3

    erased = store.vas_remove_txn(101)
    assert erased == 2
    assert v0.access_set == set()
    assert v1.access_set == {202}
    assert store.vas_total_entries() == 1


def test_vas_remove_unknown_txn_is_noop():
    store = MultiVersionStore()
    assert store.vas_remove_txn(999) == 0


def test_vas_remove_covers_propagated_entries_on_other_keys():
    """Remove must also erase ids propagated into other keys' versions."""
    store = MultiVersionStore()
    store.create("x", 0, vc(0))
    y0 = store.create("y", 0, vc(0))
    store.vas_add(y0, 7)
    x1 = store.install("x", 1, vc(1), 0, 1)
    store.vas_extend(x1, y0.access_set)  # commit-time propagation
    assert store.vas_remove_txn(7) == 2
    assert x1.access_set == set()
    assert y0.access_set == set()
