"""Unit tests for the single-version 2PC-baseline store."""

import pytest

from repro.storage import SimpleStore


def test_create_read_write_cycle():
    store = SimpleStore()
    store.create("x", "a")
    record = store.read("x")
    assert record.value == "a"
    assert record.version == 0

    store.write("x", "b")
    record = store.read("x")
    assert record.value == "b"
    assert record.version == 1


def test_duplicate_create_rejected():
    store = SimpleStore()
    store.create("x", 1)
    with pytest.raises(KeyError):
        store.create("x", 2)


def test_missing_key_read_raises():
    store = SimpleStore()
    with pytest.raises(KeyError):
        store.read("ghost")


def test_write_creates_missing_key_at_version_zero():
    store = SimpleStore()
    record = store.write("fresh", 10)
    assert record.version == 0
    assert store.read("fresh").value == 10


def test_len_and_keys():
    store = SimpleStore()
    store.create("a", 1)
    store.create("b", 2)
    assert len(store) == 2
    assert sorted(store.keys()) == ["a", "b"]
    assert "a" in store and "c" not in store
