"""Unit and integration tests for version-chain garbage collection."""

import dataclasses

import pytest

from repro.core import VectorClock
from repro.storage import VersionChain
from tests.integration.scenario_tools import make_cluster, retry_update


def build_chain(count, now_step=1.0):
    chain = VersionChain("x")
    for i in range(count):
        chain.install(
            f"v{i}", VectorClock([i]), origin=0, seq=i, installed_at=i * now_step
        )
    return chain


def test_gc_drops_old_cold_versions():
    chain = build_chain(10)
    dropped = chain.collect_garbage(keep_last=3, min_age=2.0, now=20.0)
    assert dropped == 7
    assert [v.value for v in chain] == ["v7", "v8", "v9"]
    assert chain.latest.value == "v9"


def test_gc_respects_min_age():
    chain = build_chain(10)  # installed_at = 0..9
    # Only versions at or past the age horizon (now - min_age = 4) go.
    dropped = chain.collect_garbage(keep_last=1, min_age=6.0, now=10.0)
    assert dropped == 5
    assert chain.by_vid(5).value == "v5"
    assert [v.value for v in chain][0] == "v5"


def test_gc_stops_at_vas_registration():
    chain = build_chain(10)
    chain.by_vid(2).access_set.add(77)  # an active reader's registration
    dropped = chain.collect_garbage(keep_last=1, min_age=0.0, now=100.0)
    assert dropped == 2, "reclamation must stop at the registered version"
    assert chain.by_vid(2).value == "v2"


def test_gc_never_drops_latest():
    chain = build_chain(3)
    dropped = chain.collect_garbage(keep_last=1, min_age=0.0, now=100.0)
    assert dropped == 2
    assert len(chain) == 1
    assert chain.latest.value == "v2"
    assert chain.collect_garbage(1, 0.0, now=200.0) == 0


def test_gc_validates_keep_last():
    chain = build_chain(3)
    with pytest.raises(ValueError):
        chain.collect_garbage(keep_last=0, min_age=0.0, now=1.0)


def test_gc_bounds_chain_length_under_churn():
    """A hot key overwritten hundreds of times keeps a bounded chain."""
    cluster = make_cluster("fwkv", 2, {"hot": 1}, initial={"hot": 0})
    config = cluster.config
    # Aggressive GC so the effect shows within a short run.
    config.gc_trigger_length = 8
    config.gc_keep_versions = 4
    config.gc_min_age = 1e-3

    def churn(rounds):
        for i in range(rounds):
            yield from retry_update(cluster, 0, writes={"hot": i})

    cluster.spawn(churn(150))
    cluster.run()
    chain = cluster.node(1).store.chain("hot")
    assert chain.latest.value == 149
    assert len(chain) <= 8, f"chain should stay bounded, got {len(chain)}"
    assert cluster.metrics.versions_reclaimed > 100


def test_gc_disabled_keeps_everything():
    cluster = make_cluster("fwkv", 2, {"hot": 1}, initial={"hot": 0})
    cluster.config.gc_enabled = False

    def churn(rounds):
        for i in range(rounds):
            yield from retry_update(cluster, 0, writes={"hot": i})

    cluster.spawn(churn(60))
    cluster.run()
    assert len(cluster.node(1).store.chain("hot")) == 61
    assert cluster.metrics.versions_reclaimed == 0


def test_gc_preserves_correctness_under_concurrent_readers():
    """Readers interleaved with churn still observe consistent snapshots."""
    from repro.metrics import check_no_read_skew

    cluster = make_cluster(
        "fwkv", 2, {"a": 1, "b": 1}, initial={"a": 0, "b": 0},
        record_history=True,
    )
    cluster.config.gc_trigger_length = 6
    cluster.config.gc_keep_versions = 3
    cluster.config.gc_min_age = 2e-3

    def churn(rounds):
        for i in range(rounds):
            yield from retry_update(cluster, 0, writes={"a": i, "b": i})

    def reader():
        node = cluster.node(1)
        for _ in range(40):
            txn = node.begin(is_read_only=True)
            a = yield from node.read(txn, "a")
            b = yield from node.read(txn, "b")
            yield from node.commit(txn)
            assert a == b, "a and b are always written together"
            yield cluster.sim.timeout(100e-6)

    cluster.spawn(churn(120))
    cluster.spawn(reader())
    cluster.run()
    assert cluster.metrics.versions_reclaimed > 0
    assert check_no_read_skew(cluster.finalized_history()).ok
