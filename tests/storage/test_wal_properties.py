"""Property tests pinning down the WAL replay contract.

Replay must be *idempotent* (re-applying any already-applied record is a
no-op, so duplicated log suffixes are harmless) and *order-insensitive
within a sequence-number gap* (per-origin clock records apply in
sequence order no matter how the log interleaves them, because records
above the next expected number are buffered until contiguous).  Both
properties are what make recovery safe against the real-world log
shapes -- duplicated appends around a crash instant, interleaved
per-origin streams -- without any coordination at write time.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.wal import (
    AbortRecord,
    ApplyRecord,
    DecisionRecord,
    LoadRecord,
    PrepareRecord,
    PropagateRecord,
    replay,
    store_fingerprint,
    version_set_fingerprint,
)

N = 4
KEYS = tuple(f"k{i}" for i in range(4))
LOAD = LoadRecord(tuple((key, 0) for key in KEYS))


@st.composite
def clock_records(draw):
    """A valid per-origin-contiguous stream of clock-advancing records."""
    records = []
    seqs = {origin: 0 for origin in range(N)}
    txn_id = 1000
    for _ in range(draw(st.integers(min_value=0, max_value=14))):
        origin = draw(st.integers(min_value=0, max_value=N - 1))
        seqs[origin] += 1
        seq = seqs[origin]
        if draw(st.booleans()):
            txn_id += 1
            key = draw(st.sampled_from(KEYS))
            vc = tuple(seqs[o] if o == origin else 0 for o in range(N))
            records.append(
                ApplyRecord(txn_id, origin, seq, vc, ((key, seq * 10 + origin),))
            )
        else:
            records.append(PropagateRecord(origin, seq))
    return records


@given(clock_records(), st.data())
@settings(max_examples=200, deadline=None)
def test_replay_idempotent_under_duplication(records, data):
    """Appending duplicates of already-applied records changes nothing.

    Chains compare through the exhaustive fingerprint -- vids included --
    so a duplicate that slipped through would show up as an extra
    version, not just a clock wobble.
    """
    base = replay([LOAD] + records, N)
    duplicates = []
    if records:
        indexes = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(records) - 1),
                max_size=8,
            )
        )
        duplicates = [records[i] for i in indexes]
    again = replay([LOAD] + records + duplicates, N)
    assert again.site_vc.to_tuple() == base.site_vc.to_tuple()
    assert store_fingerprint(again.store) == store_fingerprint(base.store)


@given(clock_records(), st.randoms(use_true_random=False))
@settings(max_examples=200, deadline=None)
def test_replay_order_insensitive_across_gaps(records, rnd):
    """Any permutation of the clock records rebuilds the same state.

    Shuffling opens arbitrary per-origin gaps; buffering must close them
    all.  Cross-origin interleaving may assign different per-key vids,
    so stores compare through the vid-agnostic version-set digest; the
    clock itself must match exactly.
    """
    base = replay([LOAD] + records, N)
    shuffled = list(records)
    rnd.shuffle(shuffled)
    again = replay([LOAD] + shuffled, N)
    assert again.site_vc.to_tuple() == base.site_vc.to_tuple()
    assert version_set_fingerprint(again.store) == (
        version_set_fingerprint(base.store)
    )
    assert again.replayed == base.replayed


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.sampled_from(("prepare", "abort", "apply")),
        ),
        max_size=20,
    )
)
@settings(max_examples=200, deadline=None)
def test_in_doubt_is_exactly_unresolved_prepares(events):
    """A prepare is in doubt iff no later apply/abort resolved it."""
    records = []
    expected = {}
    seq = 0
    for txn_id, kind in events:
        if kind == "prepare":
            record = PrepareRecord(txn_id, coordinator=0, writes=(("k0", 1),))
            records.append(record)
            expected[txn_id] = record
        elif kind == "abort":
            records.append(AbortRecord(txn_id))
            expected.pop(txn_id, None)
        else:
            seq += 1
            vc = tuple(seq if o == 1 else 0 for o in range(N))
            records.append(ApplyRecord(txn_id, 1, seq, vc, (("k0", seq),)))
            expected.pop(txn_id, None)
    assert replay(records, N).in_doubt == expected


@given(st.lists(st.integers(min_value=1, max_value=50), max_size=10))
@settings(max_examples=200, deadline=None)
def test_curr_seq_no_is_max_decision(seqs):
    records = [
        DecisionRecord(500 + i, seq, (seq, 0, 0, 0))
        for i, seq in enumerate(seqs)
    ]
    result = replay(records, N)
    assert result.curr_seq_no == (max(seqs) if seqs else 0)
