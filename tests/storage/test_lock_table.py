"""Unit tests for the per-key lock table's multi-key helpers."""

from repro.sim import Simulator
from repro.storage import LockTable


def test_acquire_write_all_is_all_or_nothing():
    sim = Simulator()
    table = LockTable(sim)

    def blocker():
        granted = yield table.lock_for("b").acquire_write("other")
        assert granted
        yield sim.timeout(5e-3)
        table.lock_for("b").release("other")

    result = {}

    def contender():
        ok = yield from table.acquire_write_all(
            ["a", "b", "c"], owner="txn", timeout=1e-3
        )
        result["ok"] = ok

    sim.spawn(blocker())
    sim.spawn(contender())
    sim.run()
    assert result["ok"] is False
    # Nothing may remain held by the failed contender.
    assert table.locked_keys() == []


def test_acquire_write_all_success_and_release():
    sim = Simulator()
    table = LockTable(sim)

    def proc():
        ok = yield from table.acquire_write_all(["x", "y"], "t", timeout=1e-3)
        assert ok
        assert sorted(map(str, table.locked_keys())) == ["x", "y"]
        table.release_write_all(["x", "y"], "t")

    sim.run_process(proc())
    assert not table.any_locked()


def test_acquire_mixed_key_in_both_sets_locked_exclusively():
    sim = Simulator()
    table = LockTable(sim)

    def proc():
        ok, read_held, write_held = yield from table.acquire_mixed(
            read_keys=["a", "b"], write_keys=["b", "c"], owner="t", timeout=1e-3
        )
        assert ok
        assert sorted(read_held) == ["a"]
        assert sorted(write_held) == ["b", "c"]
        assert table.lock_for("b").held_by("t") == "w"
        assert table.lock_for("a").held_by("t") == "r"
        table.release_keys(read_held + write_held, "t")

    sim.run_process(proc())
    assert not table.any_locked()


def test_acquire_mixed_failure_releases_partial_grants():
    sim = Simulator()
    table = LockTable(sim)
    outcome = {}

    def blocker():
        yield table.lock_for("z").acquire_write("other")
        yield sim.timeout(5e-3)
        table.lock_for("z").release("other")

    def contender():
        ok, read_held, write_held = yield from table.acquire_mixed(
            ["a"], ["z"], owner="t", timeout=1e-3
        )
        outcome.update(ok=ok, read_held=read_held, write_held=write_held)

    sim.spawn(blocker())
    sim.spawn(contender())
    sim.run()
    assert outcome["ok"] is False
    assert outcome["read_held"] == [] and outcome["write_held"] == []
    assert table.lock_for("a").held_by("t") is None


def test_shared_reads_do_not_conflict():
    sim = Simulator()
    table = LockTable(sim)

    def reader(name, results):
        granted = yield table.acquire_read("k", owner=name, timeout=None)
        results.append((name, granted, sim.now))
        yield sim.timeout(1e-3)
        table.release_read("k", name)

    results = []
    sim.spawn(reader("r1", results))
    sim.spawn(reader("r2", results))
    sim.run()
    assert [(n, g) for n, g, _t in results] == [("r1", True), ("r2", True)]
    # Both were granted at t=0: truly shared.
    assert all(t == 0.0 for _n, _g, t in results)
