"""WAL checkpointing: snapshot round-trips, truncation, replay equivalence.

The contract under test is the one recovery rests on: a log truncated to
its newest checkpoint replays to state bit-identical to the full
history, while consuming only the suffix.  Plus the guard rails --
fingerprint verification fails loudly on a corrupted snapshot, and a
frozen (mid-crash) log refuses to truncate.
"""

import dataclasses

import pytest

from repro.core.vector_clock import VectorClock
from repro.storage.store import MultiVersionStore
from repro.storage.wal import (
    AbortRecord,
    ApplyRecord,
    CheckpointMismatchError,
    CheckpointRecord,
    DecisionRecord,
    LoadRecord,
    PrepareRecord,
    PropagateRecord,
    WriteAheadLog,
    build_checkpoint,
    replay,
    restore_store,
    store_fingerprint,
)

N = 4


def apply_rec(txn_id, origin, seq, writes):
    commit_vc = tuple(seq if i == origin else 0 for i in range(N))
    return ApplyRecord(txn_id, origin, seq, commit_vc, tuple(writes))


def history():
    """A representative record stream: loads, applies from two origins,
    clock-only propagates, a coordinator decision, and an in-doubt
    prepare that stays open."""
    return [
        LoadRecord((("x", 0), ("y", 0), ("z", 0))),
        apply_rec(100, 1, 1, [("x", 10)]),
        PropagateRecord(2, 1),
        apply_rec(101, 1, 2, [("x", 11), ("y", 12)]),
        DecisionRecord(102, 1, (0, 1, 0, 0)),
        PrepareRecord(103, 3, (("z", 30),)),
        AbortRecord(103),
        apply_rec(104, 2, 2, [("z", 20)]),
        PrepareRecord(105, 3, (("y", 40),)),  # stays in doubt
        PropagateRecord(1, 3),
    ]


def checkpoint_of(result, records_below):
    """Snapshot a replay result the way CheckpointManager does."""
    return build_checkpoint(
        result.store,
        result.site_vc,
        result.curr_seq_no,
        in_doubt=result.in_doubt.values(),
        decisions=result.decisions.values(),
        records_below=records_below,
    )


# ----------------------------------------------------------------------
# Snapshot round-trip
# ----------------------------------------------------------------------
def test_build_restore_round_trip():
    result = replay(history(), N)
    record = checkpoint_of(result, records_below=len(history()))
    restored = restore_store(record)
    assert store_fingerprint(restored) == store_fingerprint(result.store)
    assert record.site_vc == result.site_vc.to_tuple()
    assert record.curr_seq_no == result.curr_seq_no
    assert {p.txn_id for p in record.in_doubt} == set(result.in_doubt)
    assert {d.txn_id for d in record.decisions} == set(result.decisions)


def test_round_trip_preserves_gc_advanced_base_vid():
    """A chain whose prefix was garbage-collected keeps its vid offsets."""
    store = MultiVersionStore()
    vc = VectorClock.zeros(N)
    store.create("x", 0, vc.copy())
    for seq in (1, 2, 3):
        tick = vc.copy()
        tick[1] = seq
        store.install("x", seq * 10, tick, origin=1, seq=seq, writer_txn=seq)
    chain = store.chain("x")
    chain._versions = chain._versions[2:]  # GC'd prefix
    chain._base_vid = 2
    record = build_checkpoint(store, VectorClock((0, 3, 0, 0)), 0)
    restored = restore_store(record)
    assert store_fingerprint(restored) == store_fingerprint(store)
    assert [v.vid for v in restored.chain("x")] == [2, 3]


def test_corrupted_checkpoint_fails_loudly():
    result = replay(history(), N)
    record = checkpoint_of(result, records_below=len(history()))
    tampered = dataclasses.replace(record, curr_seq_no=record.curr_seq_no + 1)
    with pytest.raises(CheckpointMismatchError):
        restore_store(tampered)
    forged = dataclasses.replace(record, fingerprint="0" * 64)
    with pytest.raises(CheckpointMismatchError):
        restore_store(forged)


# ----------------------------------------------------------------------
# Truncation mechanics
# ----------------------------------------------------------------------
def make_wal(records):
    wal = WriteAheadLog()
    for record in records:
        wal.append(record)
    return wal


def test_truncate_without_checkpoint_is_noop():
    wal = make_wal(history())
    assert wal.truncate_to_checkpoint() == 0
    assert len(wal) == len(history())
    assert wal.truncated == 0


def test_truncate_keeps_checkpoint_and_suffix():
    prefix = history()
    checkpoint = checkpoint_of(replay(prefix, N), records_below=len(prefix))
    suffix = [apply_rec(106, 1, 4, [("x", 13)]), PropagateRecord(2, 3)]
    wal = make_wal(prefix + [checkpoint] + suffix)
    dropped = wal.truncate_to_checkpoint()
    assert dropped == len(prefix)
    assert wal.truncated == len(prefix)
    assert wal.records() == tuple([checkpoint] + suffix)
    # Logical length (appends ever) survives the physical shift.
    assert len(wal) + wal.truncated == len(prefix) + 1 + len(suffix)
    # Idempotent: the checkpoint is already the first record.
    assert wal.truncate_to_checkpoint() == 0


def test_truncate_uses_newest_checkpoint():
    prefix = history()
    first = checkpoint_of(replay(prefix, N), records_below=len(prefix))
    middle = [apply_rec(106, 1, 4, [("x", 13)])]
    second_input = prefix + [first] + middle
    second = checkpoint_of(
        replay(second_input, N), records_below=len(second_input)
    )
    wal = make_wal(second_input + [second, PropagateRecord(2, 3)])
    dropped = wal.truncate_to_checkpoint()
    assert dropped == len(second_input)
    assert isinstance(wal.records()[0], CheckpointRecord)
    assert wal.records()[0] is second


def test_frozen_wal_refuses_truncation():
    prefix = history()
    checkpoint = checkpoint_of(replay(prefix, N), records_below=len(prefix))
    wal = make_wal(prefix + [checkpoint])
    wal.freeze()
    assert wal.truncate_to_checkpoint() == 0
    assert len(wal) == len(prefix) + 1
    wal.unfreeze()
    assert wal.truncate_to_checkpoint() == len(prefix)


# ----------------------------------------------------------------------
# Replay equivalence: truncated log == full history
# ----------------------------------------------------------------------
def suffix_records():
    return [
        apply_rec(106, 1, 4, [("x", 13)]),
        PropagateRecord(2, 3),
        DecisionRecord(107, 2, (0, 2, 0, 0)),
        apply_rec(105, 3, 1, [("y", 40)]),  # resolves the in-doubt prepare
        PrepareRecord(108, 2, (("z", 50),)),
    ]


def assert_equivalent(full, truncated):
    assert store_fingerprint(truncated.store) == store_fingerprint(full.store)
    assert truncated.site_vc.to_tuple() == full.site_vc.to_tuple()
    assert truncated.curr_seq_no == full.curr_seq_no
    assert set(truncated.in_doubt) == set(full.in_doubt)
    assert set(truncated.decisions) == set(full.decisions)


def test_checkpointed_replay_equals_full_history():
    prefix = history()
    checkpoint = checkpoint_of(replay(prefix, N), records_below=len(prefix))
    suffix = suffix_records()

    full = replay(prefix + [checkpoint] + suffix, N)
    truncated = replay([checkpoint] + suffix, N)
    assert_equivalent(full, truncated)
    # In-doubt state flows through the snapshot: the prepare captured in
    # doubt was resolved by the suffix, the new one is open.
    assert set(truncated.in_doubt) == {108}

    # Bounded replay: the truncated log consumes only checkpoint+suffix.
    assert full.replayed == len(prefix) + 1 + len(suffix)
    assert truncated.replayed == 1 + len(suffix)
    assert full.checkpoints == truncated.checkpoints == 1


def test_checkpoint_reset_discards_gap_buffered_prefix():
    """Clock records buffered across a gap below the snapshot clock are
    superseded by the reset, not double-applied after it."""
    prefix = history()
    checkpoint = checkpoint_of(replay(prefix, N), records_below=len(prefix))
    # A duplicate of an old advance arrives out of order before the
    # checkpoint (gap-buffered at replay), then the suffix continues.
    stream = (
        prefix
        + [apply_rec(199, 2, 9, [("z", 99)])]  # far-future gap: buffered
        + [checkpoint]
        + [apply_rec(106, 1, 4, [("x", 13)])]
    )
    result = replay(stream, N)
    assert result.site_vc[2] == checkpoint.site_vc[2]
    assert [v.value for v in result.store.chain("z")] == [0, 20]
    assert [v.value for v in result.store.chain("x")][-1] == 13


def test_chained_checkpoints_replay_from_newest():
    prefix = history()
    first = checkpoint_of(replay(prefix, N), records_below=len(prefix))
    middle = suffix_records()
    second_input = prefix + [first] + middle
    second = checkpoint_of(
        replay(second_input, N), records_below=len(second_input)
    )
    tail = [apply_rec(109, 1, 5, [("y", 41)])]

    full = replay(second_input + [second] + tail, N)
    truncated = replay([second] + tail, N)
    assert_equivalent(full, truncated)
    assert truncated.replayed == 1 + len(tail)
    assert full.checkpoints == 2 and truncated.checkpoints == 1
