"""Unit tests for the write-ahead log and durable-state replay."""

import pytest

from repro.core.vector_clock import VectorClock
from repro.storage.wal import (
    AbortRecord,
    ApplyRecord,
    CheckpointRecord,
    DecisionRecord,
    LoadRecord,
    PrepareRecord,
    PropagateRecord,
    WriteAheadLog,
    replay,
    store_fingerprint,
    version_set_fingerprint,
)

N = 4


def apply_rec(txn_id, origin, seq, writes, vc=None):
    commit_vc = vc if vc is not None else tuple(
        seq if i == origin else 0 for i in range(N)
    )
    return ApplyRecord(txn_id, origin, seq, commit_vc, tuple(writes))


# ----------------------------------------------------------------------
# The log itself
# ----------------------------------------------------------------------
def test_append_and_snapshot():
    wal = WriteAheadLog()
    records = [LoadRecord((("x", 0),)), PropagateRecord(1, 1)]
    for record in records:
        wal.append(record)
    assert len(wal) == 2
    assert wal.records() == tuple(records)
    # The snapshot is stable: later appends do not mutate it.
    snapshot = wal.records()
    wal.append(PropagateRecord(1, 2))
    assert snapshot == tuple(records)


def test_freeze_discards_and_counts():
    wal = WriteAheadLog()
    wal.append(PropagateRecord(0, 1))
    wal.freeze()
    assert wal.frozen
    wal.append(PropagateRecord(0, 2))
    wal.append(AbortRecord(7))
    assert wal.discarded == 2
    assert len(wal) == 1
    wal.unfreeze()
    wal.append(PropagateRecord(0, 2))
    assert len(wal) == 2
    assert wal.discarded == 2


# ----------------------------------------------------------------------
# Replay: store and clock rebuild
# ----------------------------------------------------------------------
def test_replay_rebuilds_store_and_clock():
    records = [
        LoadRecord((("x", 0), ("y", 0))),
        apply_rec(100, 1, 1, [("x", 10)]),
        PropagateRecord(2, 1),
        apply_rec(101, 1, 2, [("x", 11), ("y", 12)]),
    ]
    result = replay(records, N)
    assert result.replayed == len(records)
    assert result.site_vc.to_tuple() == (0, 2, 1, 0)
    x_chain = list(result.store.chain("x"))
    assert [v.value for v in x_chain] == [0, 10, 11]
    assert x_chain[-1].origin == 1 and x_chain[-1].seq == 2
    assert x_chain[-1].writer_txn == 101
    assert [v.value for v in result.store.chain("y")] == [0, 12]
    assert not result.in_doubt


def test_replay_in_doubt_extraction():
    prepare = PrepareRecord(200, coordinator=3, writes=(("x", 5),))
    # A prepare with no matching apply/abort is in doubt; one resolved
    # either way is not.
    records = [
        LoadRecord((("x", 0),)),
        prepare,
        PrepareRecord(201, 3, (("x", 6),)),
        AbortRecord(201),
        PrepareRecord(202, 2, (("x", 7),)),
        apply_rec(202, 2, 1, [("x", 7)]),
    ]
    result = replay(records, N)
    assert result.in_doubt == {200: prepare}


def test_replay_decisions_and_curr_seq_no():
    records = [
        DecisionRecord(300, 1, (1, 0, 0, 0)),
        DecisionRecord(301, 2, (2, 0, 0, 0)),
    ]
    result = replay(records, N)
    assert set(result.decisions) == {300, 301}
    assert result.decisions[301].seq_no == 2
    assert result.curr_seq_no == 2


def test_replay_gap_buffering():
    """A record above the next expected seq waits for its predecessor."""
    records = [
        LoadRecord((("x", 0),)),
        apply_rec(100, 1, 2, [("x", 2)]),  # arrives before seq 1
        apply_rec(101, 1, 1, [("x", 1)]),  # closes the gap; both apply
    ]
    result = replay(records, N)
    assert result.site_vc[1] == 2
    # Chain order follows sequence order, not log order.
    assert [v.value for v in result.store.chain("x")] == [0, 1, 2]


def test_replay_skips_duplicates():
    records = [
        LoadRecord((("x", 0),)),
        apply_rec(100, 1, 1, [("x", 1)]),
        apply_rec(100, 1, 1, [("x", 1)]),  # duplicated suffix
        PropagateRecord(1, 1),  # stale clock-only duplicate
    ]
    result = replay(records, N)
    assert result.site_vc[1] == 1
    assert [v.value for v in result.store.chain("x")] == [0, 1]


def test_replay_drains_never_contiguous_leftovers():
    """A truncated log's orphaned records still apply, in seq order."""
    records = [
        LoadRecord((("x", 0),)),
        apply_rec(100, 1, 3, [("x", 3)]),  # seq 1-2 lost with the tail
        PropagateRecord(1, 5),
    ]
    result = replay(records, N)
    assert result.site_vc[1] == 5
    assert [v.value for v in result.store.chain("x")] == [0, 3]


def test_replay_rejects_unknown_record():
    with pytest.raises(TypeError):
        replay([object()], N)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_store_fingerprint_detects_divergence():
    base = [LoadRecord((("x", 0),)), apply_rec(100, 1, 1, [("x", 1)])]
    a = replay(base, N).store
    b = replay(base, N).store
    assert store_fingerprint(a) == store_fingerprint(b)
    c = replay(base + [apply_rec(101, 1, 2, [("x", 2)])], N).store
    assert store_fingerprint(a) != store_fingerprint(c)


def test_version_set_fingerprint_is_vid_agnostic():
    # Two independent origins writing different keys may interleave
    # differently across replays; the version-set digest is invariant.
    load = LoadRecord((("x", 0), ("y", 0)))
    ab = [load, apply_rec(1, 1, 1, [("x", 1)]), apply_rec(2, 2, 1, [("y", 2)])]
    ba = [load, apply_rec(2, 2, 1, [("y", 2)]), apply_rec(1, 1, 1, [("x", 1)])]
    assert version_set_fingerprint(replay(ab, N).store) == (
        version_set_fingerprint(replay(ba, N).store)
    )


def test_replay_commit_vc_preserved():
    vc = (3, 1, 0, 2)
    result = replay(
        [LoadRecord((("x", 0),)), apply_rec(100, 0, 3, [("x", 9)], vc=vc)], N
    )
    latest = result.store.chain("x").latest
    assert latest.vc.to_tuple() == vc
    assert latest.vc == VectorClock(vc)


# ----------------------------------------------------------------------
# Buffered mode (group commit)
# ----------------------------------------------------------------------
def checkpoint_rec():
    return CheckpointRecord(
        site_vc=(0,) * N,
        curr_seq_no=0,
        chains=(),
        in_doubt=(),
        decisions=(),
        fingerprint="test",
    )


def test_buffered_append_is_not_durable_until_marked():
    wal = WriteAheadLog(buffered=True)
    lsn1 = wal.append(PropagateRecord(0, 1))
    lsn2 = wal.append(PropagateRecord(0, 2))
    assert (lsn1, lsn2) == (1, 2)
    assert wal.tail_lsn == 2 and wal.durable_lsn == 0
    assert not wal.is_durable(lsn1)
    assert wal.mark_durable(lsn2) == 2
    assert wal.durable_lsn == 2 and wal.is_durable(lsn2)
    assert wal.syncs == 1 and wal.records_synced == 2


def test_unbuffered_appends_are_instantly_durable():
    wal = WriteAheadLog()
    lsn = wal.append(PropagateRecord(0, 1))
    assert wal.is_durable(lsn) and wal.durable_lsn == wal.tail_lsn
    # mark_durable is a no-op outside buffered mode.
    assert wal.mark_durable(lsn) == 0
    assert wal.syncs == 0


def test_mark_durable_clamps_to_tail_and_never_regresses():
    wal = WriteAheadLog(buffered=True)
    wal.append(PropagateRecord(0, 1))
    assert wal.mark_durable(99) == 1  # clamped to the tail
    assert wal.durable_lsn == 1
    assert wal.mark_durable(1) == 0  # already durable: no new records
    assert wal.durable_lsn == 1


def test_append_durable_skips_the_sync_queue():
    wal = WriteAheadLog(buffered=True)
    requested = []
    wal.on_append = requested.append
    lsn = wal.append_durable(LoadRecord((("x", 0),)))
    assert wal.is_durable(lsn)
    assert requested == []  # setup loads never ask for a sync


def test_on_append_hook_sees_every_lsn():
    wal = WriteAheadLog(buffered=True)
    seen = []
    wal.on_append = seen.append
    wal.append(PropagateRecord(0, 1))
    wal.append(PropagateRecord(0, 2))
    assert seen == [1, 2]


def test_freeze_drops_exactly_the_unsynced_suffix():
    wal = WriteAheadLog(buffered=True)
    survivor = PropagateRecord(0, 1)
    wal.append(survivor)
    wal.mark_durable(1)
    wal.append(PropagateRecord(0, 2))
    wal.append(PropagateRecord(0, 3))
    wal.freeze()
    assert wal.lost_on_crash == 2
    assert wal.records() == (survivor,)
    assert wal.tail_lsn == 1 and wal.durable_lsn == 1
    # Replay after recovery sees only the durable prefix.
    wal.unfreeze()
    lsn = wal.append(PropagateRecord(0, 2))
    assert lsn == 2  # LSNs continue from the surviving prefix


def test_freeze_with_everything_durable_loses_nothing():
    wal = WriteAheadLog(buffered=True)
    wal.append(PropagateRecord(0, 1))
    wal.mark_durable(wal.tail_lsn)
    wal.freeze()
    assert wal.lost_on_crash == 0
    assert len(wal) == 1


def test_truncation_waits_for_a_durable_checkpoint():
    wal = WriteAheadLog(buffered=True)
    wal.append(PropagateRecord(0, 1))
    wal.mark_durable(1)
    wal.append(checkpoint_rec())
    # The checkpoint record itself is still volatile: refuse to truncate.
    assert wal.truncate_to_checkpoint() == 0
    assert wal.truncated == 0
    wal.mark_durable(wal.tail_lsn)
    assert wal.truncate_to_checkpoint() == 1
    assert wal.truncated == 1
    assert isinstance(wal.records()[0], CheckpointRecord)


def test_lsns_are_absolute_across_truncation():
    wal = WriteAheadLog(buffered=True)
    wal.append(PropagateRecord(0, 1))
    wal.append(checkpoint_rec())
    wal.mark_durable(wal.tail_lsn)
    assert wal.truncate_to_checkpoint() == 1
    lsn = wal.append(PropagateRecord(0, 2))
    assert lsn == 3  # 2 pre-truncation records + this one
    assert wal.tail_lsn == 3
    assert wal.durable_lsn == 2
    assert wal.mark_durable(3) == 1
