"""Unit tests for the write-ahead log and durable-state replay."""

import pytest

from repro.core.vector_clock import VectorClock
from repro.storage.wal import (
    AbortRecord,
    ApplyRecord,
    DecisionRecord,
    LoadRecord,
    PrepareRecord,
    PropagateRecord,
    WriteAheadLog,
    replay,
    store_fingerprint,
    version_set_fingerprint,
)

N = 4


def apply_rec(txn_id, origin, seq, writes, vc=None):
    commit_vc = vc if vc is not None else tuple(
        seq if i == origin else 0 for i in range(N)
    )
    return ApplyRecord(txn_id, origin, seq, commit_vc, tuple(writes))


# ----------------------------------------------------------------------
# The log itself
# ----------------------------------------------------------------------
def test_append_and_snapshot():
    wal = WriteAheadLog()
    records = [LoadRecord((("x", 0),)), PropagateRecord(1, 1)]
    for record in records:
        wal.append(record)
    assert len(wal) == 2
    assert wal.records() == tuple(records)
    # The snapshot is stable: later appends do not mutate it.
    snapshot = wal.records()
    wal.append(PropagateRecord(1, 2))
    assert snapshot == tuple(records)


def test_freeze_discards_and_counts():
    wal = WriteAheadLog()
    wal.append(PropagateRecord(0, 1))
    wal.freeze()
    assert wal.frozen
    wal.append(PropagateRecord(0, 2))
    wal.append(AbortRecord(7))
    assert wal.discarded == 2
    assert len(wal) == 1
    wal.unfreeze()
    wal.append(PropagateRecord(0, 2))
    assert len(wal) == 2
    assert wal.discarded == 2


# ----------------------------------------------------------------------
# Replay: store and clock rebuild
# ----------------------------------------------------------------------
def test_replay_rebuilds_store_and_clock():
    records = [
        LoadRecord((("x", 0), ("y", 0))),
        apply_rec(100, 1, 1, [("x", 10)]),
        PropagateRecord(2, 1),
        apply_rec(101, 1, 2, [("x", 11), ("y", 12)]),
    ]
    result = replay(records, N)
    assert result.replayed == len(records)
    assert result.site_vc.to_tuple() == (0, 2, 1, 0)
    x_chain = list(result.store.chain("x"))
    assert [v.value for v in x_chain] == [0, 10, 11]
    assert x_chain[-1].origin == 1 and x_chain[-1].seq == 2
    assert x_chain[-1].writer_txn == 101
    assert [v.value for v in result.store.chain("y")] == [0, 12]
    assert not result.in_doubt


def test_replay_in_doubt_extraction():
    prepare = PrepareRecord(200, coordinator=3, writes=(("x", 5),))
    # A prepare with no matching apply/abort is in doubt; one resolved
    # either way is not.
    records = [
        LoadRecord((("x", 0),)),
        prepare,
        PrepareRecord(201, 3, (("x", 6),)),
        AbortRecord(201),
        PrepareRecord(202, 2, (("x", 7),)),
        apply_rec(202, 2, 1, [("x", 7)]),
    ]
    result = replay(records, N)
    assert result.in_doubt == {200: prepare}


def test_replay_decisions_and_curr_seq_no():
    records = [
        DecisionRecord(300, 1, (1, 0, 0, 0)),
        DecisionRecord(301, 2, (2, 0, 0, 0)),
    ]
    result = replay(records, N)
    assert set(result.decisions) == {300, 301}
    assert result.decisions[301].seq_no == 2
    assert result.curr_seq_no == 2


def test_replay_gap_buffering():
    """A record above the next expected seq waits for its predecessor."""
    records = [
        LoadRecord((("x", 0),)),
        apply_rec(100, 1, 2, [("x", 2)]),  # arrives before seq 1
        apply_rec(101, 1, 1, [("x", 1)]),  # closes the gap; both apply
    ]
    result = replay(records, N)
    assert result.site_vc[1] == 2
    # Chain order follows sequence order, not log order.
    assert [v.value for v in result.store.chain("x")] == [0, 1, 2]


def test_replay_skips_duplicates():
    records = [
        LoadRecord((("x", 0),)),
        apply_rec(100, 1, 1, [("x", 1)]),
        apply_rec(100, 1, 1, [("x", 1)]),  # duplicated suffix
        PropagateRecord(1, 1),  # stale clock-only duplicate
    ]
    result = replay(records, N)
    assert result.site_vc[1] == 1
    assert [v.value for v in result.store.chain("x")] == [0, 1]


def test_replay_drains_never_contiguous_leftovers():
    """A truncated log's orphaned records still apply, in seq order."""
    records = [
        LoadRecord((("x", 0),)),
        apply_rec(100, 1, 3, [("x", 3)]),  # seq 1-2 lost with the tail
        PropagateRecord(1, 5),
    ]
    result = replay(records, N)
    assert result.site_vc[1] == 5
    assert [v.value for v in result.store.chain("x")] == [0, 3]


def test_replay_rejects_unknown_record():
    with pytest.raises(TypeError):
        replay([object()], N)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_store_fingerprint_detects_divergence():
    base = [LoadRecord((("x", 0),)), apply_rec(100, 1, 1, [("x", 1)])]
    a = replay(base, N).store
    b = replay(base, N).store
    assert store_fingerprint(a) == store_fingerprint(b)
    c = replay(base + [apply_rec(101, 1, 2, [("x", 2)])], N).store
    assert store_fingerprint(a) != store_fingerprint(c)


def test_version_set_fingerprint_is_vid_agnostic():
    # Two independent origins writing different keys may interleave
    # differently across replays; the version-set digest is invariant.
    load = LoadRecord((("x", 0), ("y", 0)))
    ab = [load, apply_rec(1, 1, 1, [("x", 1)]), apply_rec(2, 2, 1, [("y", 2)])]
    ba = [load, apply_rec(2, 2, 1, [("y", 2)]), apply_rec(1, 1, 1, [("x", 1)])]
    assert version_set_fingerprint(replay(ab, N).store) == (
        version_set_fingerprint(replay(ba, N).store)
    )


def test_replay_commit_vc_preserved():
    vc = (3, 1, 0, 2)
    result = replay(
        [LoadRecord((("x", 0),)), apply_rec(100, 0, 3, [("x", 9)], vc=vc)], N
    )
    latest = result.store.chain("x").latest
    assert latest.vc.to_tuple() == vc
    assert latest.vc == VectorClock(vc)
