"""Unit tests for VAS tombstones (Remove vs in-flight commit races)."""

from repro.core import VectorClock
from repro.storage import MultiVersionStore


def vc():
    return VectorClock.zeros(2)


def test_tombstone_blocks_late_reinsertion():
    store = MultiVersionStore()
    v0 = store.create("x", 0, vc())
    store.vas_add(v0, 42)
    assert v0.access_set == {42}

    store.vas_remove_txn(42, now=1.0)
    assert v0.access_set == set()

    # A late commit tries to propagate the removed id: ignored.
    v1 = store.install("x", 1, vc(), 0, 1)
    store.vas_extend(v1, {42, 43})
    assert v1.access_set == {43}


def test_tombstones_expire_after_ttl():
    store = MultiVersionStore(tombstone_ttl=1.0)
    v0 = store.create("x", 0, vc())
    store.vas_remove_txn(42, now=0.0)

    # Within the TTL the id stays blocked.
    store.vas_add(v0, 42)
    assert v0.access_set == set()

    # A later removal prunes expired tombstones; 42 becomes insertable
    # again (its transaction would be long gone in practice).
    store.vas_remove_txn(99, now=5.0)
    store.vas_add(v0, 42)
    assert v0.access_set == {42}


def test_remove_is_idempotent():
    store = MultiVersionStore()
    v0 = store.create("x", 0, vc())
    store.vas_add(v0, 7)
    assert store.vas_remove_txn(7, now=0.0) == 1
    assert store.vas_remove_txn(7, now=0.0) == 0
    assert len(store._tombstone_queue) == 1, "no duplicate tombstones"
