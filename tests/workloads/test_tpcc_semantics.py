"""TPC-C profile semantics executed against a live cluster.

Beyond generator-level unit tests: each profile's business effects must
hold after running through the real protocol stack.
"""

import pytest

from repro import Cluster, ClusterConfig
from repro.workloads import TPCCConfig, TPCCWorkload
from repro.workloads.base import TxnContext
from repro.workloads.tpcc import schema, tpcc_directory
from repro.workloads.tpcc.transactions import (
    delivery_body,
    new_order_body,
    order_status_body,
    payment_body,
    stock_level_body,
)

SIZING = TPCCConfig(
    num_warehouses=2,
    districts_per_warehouse=2,
    customers_per_district=10,
    num_items=20,
    initial_orders_per_district=2,
)


@pytest.fixture()
def cluster():
    built = Cluster(
        "fwkv",
        ClusterConfig(num_nodes=2, seed=3),
        directory=tpcc_directory(2),
    )
    workload = TPCCWorkload(SIZING, num_nodes=2, seed=3)
    built.load_many(workload.load_items())
    return built


def run_profile(cluster, node_id, body, *, read_only=False, profile="test"):
    node = cluster.node(node_id)

    def proc():
        txn = node.begin(is_read_only=read_only, profile=profile)
        result = yield from body(TxnContext(node, txn))
        ok = yield from node.commit(txn)
        return ok, result

    return cluster.run_process(proc())


def read_record(cluster, key):
    return cluster.node(cluster.directory.site(key)).store.chain(key).latest.value


def test_new_order_effects(cluster):
    lines = [(5, 0, 3), (7, 0, 2)]
    ok, o_id = run_profile(cluster, 0, new_order_body(0, 1, c=4, lines=lines))
    assert ok
    assert o_id == 3  # two initial orders preloaded

    district = read_record(cluster, schema.district_key(0, 1))
    assert district["next_o_id"] == 4

    order = read_record(cluster, schema.order_key(0, 1, o_id))
    assert order["customer"] == 4
    assert order["line_count"] == 2

    stock = read_record(cluster, schema.stock_key(0, 5))
    assert stock["order_cnt"] == 1 and stock["ytd"] == 3

    marker = read_record(cluster, schema.new_order_key(0, 1, o_id))
    assert marker == {"delivered": False}
    pointer = read_record(cluster, schema.customer_last_order_key(0, 1, 4))
    assert pointer == {"order": o_id}


def test_payment_effects_including_remote_customer(cluster):
    before_w = read_record(cluster, schema.warehouse_key(0))["ytd"]
    before_c = read_record(cluster, schema.customer_key(1, 0, 2))["balance"]

    ok, _ = run_profile(
        cluster, 0, payment_body(0, 0, cw=1, cd=0, c=2, amount=50.0, nonce=99)
    )
    assert ok
    assert read_record(cluster, schema.warehouse_key(0))["ytd"] == before_w + 50.0
    customer = read_record(cluster, schema.customer_key(1, 0, 2))
    assert customer["balance"] == before_c - 50.0
    assert customer["payment_cnt"] == 2
    assert read_record(cluster, schema.history_key(0, 0, 99))["amount"] == 50.0


def test_delivery_effects_and_cursor_advance(cluster):
    ok, delivered = run_profile(cluster, 0, delivery_body(0, 0, carrier=7))
    assert ok
    assert delivered == 1  # oldest undelivered order
    assert read_record(cluster, schema.new_order_key(0, 0, 1))["delivered"]
    assert read_record(cluster, schema.order_key(0, 0, 1))["carrier"] == 7
    assert read_record(cluster, schema.delivery_cursor_key(0, 0)) == {"next": 2}

    # Second delivery takes the next order.
    ok, delivered = run_profile(cluster, 0, delivery_body(0, 0, carrier=8))
    assert ok and delivered == 2

    # Third: nothing left; commits with no writes.
    ok, delivered = run_profile(cluster, 0, delivery_body(0, 0, carrier=9))
    assert ok and delivered is None
    assert read_record(cluster, schema.delivery_cursor_key(0, 0)) == {"next": 3}


def test_order_status_reflects_latest_order(cluster):
    lines = [(3, 0, 1)]
    ok, o_id = run_profile(cluster, 0, new_order_body(0, 0, c=5, lines=lines))
    assert ok

    ok, status = run_profile(
        cluster, 1, order_status_body(0, 0, 5), read_only=True
    )
    assert ok
    assert status["order"]["id"] == o_id
    assert len(status["lines"]) == 1
    assert status["lines"][0]["item"] == 3


def test_order_status_for_customer_without_orders(cluster):
    ok, status = run_profile(
        cluster, 1, order_status_body(0, 0, 9), read_only=True
    )
    assert ok
    assert status["order"] is None


def test_stock_level_counts_low_stock(cluster):
    ok, low = run_profile(
        cluster, 1,
        stock_level_body(0, 0, threshold=1000, orders_to_scan=2),
        read_only=True,
    )
    assert ok
    assert low > 0, "with threshold 1000 every scanned item counts as low"

    ok, none_low = run_profile(
        cluster, 1,
        stock_level_body(0, 0, threshold=0, orders_to_scan=2),
        read_only=True,
    )
    assert ok
    assert none_low == 0
