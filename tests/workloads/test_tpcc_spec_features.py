"""Tests for TPC-C spec features: by-last-name lookup and 1% rollbacks."""

import pytest

from repro import Cluster, ClusterConfig, RunConfig
from repro.harness import run_experiment
from repro.workloads import TPCCConfig, TPCCWorkload
from repro.workloads.base import Rollback, TxnContext
from repro.workloads.tpcc import schema, tpcc_directory
from repro.workloads.tpcc.loader import load_items
from repro.workloads.tpcc.transactions import (
    new_order_body,
    order_status_by_name_body,
    payment_by_name_body,
)

SIZING = TPCCConfig(
    num_warehouses=2,
    districts_per_warehouse=2,
    customers_per_district=12,
    num_items=20,
    initial_orders_per_district=2,
)


def test_last_name_follows_spec_syllables():
    assert schema.last_name(0) == "BARBARBAR"
    assert schema.last_name(999) == "EINGEINGEING"
    assert schema.last_name(371) == "PRICALLYOUGHT"
    with pytest.raises(ValueError):
        schema.last_name(1000)


def test_customer_last_name_is_deterministic_and_many_to_few():
    names = {schema.customer_last_name(c) for c in range(1, 2000)}
    assert len(names) <= 1000
    assert schema.customer_last_name(5) == schema.customer_last_name(5)


def test_loader_builds_consistent_name_index():
    items = dict(load_items(SIZING))
    index_entries = {
        key: value for key, value in items.items()
        if key[0] == schema.CUSTOMER_NAME_INDEX
    }
    assert index_entries, "loader must emit name-index keys"
    # Every customer appears in exactly the index bucket of its name.
    for (tag, w, d, name), entry in index_entries.items():
        for c in entry["ids"]:
            assert schema.customer_last_name(c) == name
    ids_in_index = sorted(
        c
        for (tag, w, d, _name), entry in index_entries.items()
        for c in entry["ids"]
        if (w, d) == (0, 0)
    )
    assert ids_in_index == list(range(1, SIZING.customers_per_district + 1))


@pytest.fixture()
def cluster():
    built = Cluster(
        "fwkv", ClusterConfig(num_nodes=2, seed=5), directory=tpcc_directory(2)
    )
    built.load_many(TPCCWorkload(SIZING, num_nodes=2, seed=5).load_items())
    return built


def run_body(cluster, node_id, body, *, read_only=False):
    node = cluster.node(node_id)

    def proc():
        txn = node.begin(is_read_only=read_only)
        try:
            result = yield from body(TxnContext(node, txn))
        except Rollback:
            node.abort(txn)
            return "rolled-back", None
        ok = yield from node.commit(txn)
        return ok, result

    return cluster.run_process(proc())


def test_payment_by_name_debits_midpoint_customer(cluster):
    name = schema.customer_last_name(3)
    ok, paid_customer = run_body(
        cluster, 0,
        payment_by_name_body(0, 0, 0, 0, name, amount=25.0, nonce=1),
    )
    assert ok is True
    assert schema.customer_last_name(paid_customer) == name
    site = cluster.directory.site(schema.customer_key(0, 0, paid_customer))
    record = (
        cluster.node(site).store.chain(schema.customer_key(0, 0, paid_customer))
        .latest.value
    )
    assert record["balance"] == pytest.approx(-35.0)  # -10 initial - 25


def test_order_status_by_name_resolves(cluster):
    name = schema.customer_last_name(1)
    ok, status = run_body(
        cluster, 1, order_status_by_name_body(0, 0, name), read_only=True
    )
    assert ok is True
    assert schema.customer_last_name(status["customer"]["id"]) == name


def test_invalid_new_order_rolls_back_cleanly(cluster):
    before = (
        cluster.node(0).store.chain(schema.district_key(0, 0)).latest.value
    )
    outcome, _ = run_body(
        cluster, 0,
        new_order_body(0, 0, c=2, lines=[(1, 0, 1)], invalid_item=True),
    )
    assert outcome == "rolled-back"
    after = cluster.node(0).store.chain(schema.district_key(0, 0)).latest.value
    assert after == before, "a rolled-back NewOrder must leave no trace"
    assert cluster.metrics.rollbacks == 1
    assert cluster.metrics.commits == 0
    assert not cluster.any_locks_held()
    cluster.run()
    assert cluster.total_vas_entries() == 0


def test_harness_handles_rollbacks_end_to_end():
    sizing = TPCCConfig(
        num_warehouses=2,
        districts_per_warehouse=2,
        customers_per_district=12,
        num_items=20,
        initial_orders_per_district=2,
        read_only_fraction=0.0,
        new_order_rollback_prob=0.5,  # exaggerated so a short run sees them
    )
    workload = TPCCWorkload(sizing, num_nodes=2, seed=6)
    result = run_experiment(
        "fwkv",
        workload,
        ClusterConfig(num_nodes=2, clients_per_node=2, seed=6),
        RunConfig(duration=0.02, warmup=0.0),
        directory=tpcc_directory(2),
    )
    assert result.metrics["rollbacks"] > 0
    assert result.metrics["commits"] > 0
