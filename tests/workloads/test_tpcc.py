"""Unit tests for the TPC-C port: schema, loader, generator, placement."""

import random
from collections import Counter

import pytest

from repro.workloads import TPCCConfig, TPCCWorkload
from repro.workloads.tpcc import schema, tpcc_directory
from repro.workloads.tpcc.loader import load_items
from repro.workloads.tpcc.transactions import (
    DELIVERY,
    NEW_ORDER,
    ORDER_STATUS,
    PAYMENT,
    READ_ONLY_PROFILES,
    STOCK_LEVEL,
    UPDATE_PROFILES,
)

SMALL = TPCCConfig(
    num_warehouses=4,
    districts_per_warehouse=2,
    customers_per_district=10,
    num_items=20,
    initial_orders_per_district=3,
)


def test_schema_key_shapes_and_ownership():
    assert schema.warehouse_key(3) == ("w", 3)
    assert schema.owning_warehouse(schema.customer_key(2, 1, 7)) == 2
    assert schema.owning_warehouse(schema.order_line_key(5, 1, 9, 0)) == 5
    with pytest.raises(ValueError):
        schema.owning_warehouse(schema.item_key(4))


def test_loader_populates_expected_tables():
    items = dict(load_items(SMALL))
    # Warehouses, districts, cursors.
    for w in range(4):
        assert schema.warehouse_key(w) in items
        for d in range(2):
            district = items[schema.district_key(w, d)]
            assert district["next_o_id"] == 4  # 3 initial orders
            assert items[schema.delivery_cursor_key(w, d)] == {"next": 1}
    # Item catalog and per-warehouse stock.
    assert sum(1 for k in items if k[0] == schema.ITEM) == 20
    assert sum(1 for k in items if k[0] == schema.STOCK) == 4 * 20
    # Initial orders exist, belong to customer k, and have matching lines.
    order = items[schema.order_key(0, 0, 1)]
    assert order["customer"] == 1
    for line in range(order["line_count"]):
        assert schema.order_line_key(0, 0, 1, line) in items
    # Customer last-order pointers cover the preloaded orders.
    assert items[schema.customer_last_order_key(0, 0, 1)] == {"order": 1}
    assert items[schema.customer_last_order_key(0, 0, 9)] == {"order": 0}


def test_total_keys_estimate_close_to_actual():
    actual = len(list(load_items(SMALL)))
    estimate = SMALL.total_keys
    assert abs(actual - estimate) / actual < 0.25


def test_directory_places_warehouse_tree_together():
    directory = tpcc_directory(4)
    for w in range(8):
        site = directory.site(schema.warehouse_key(w))
        assert site == w % 4
        assert directory.site(schema.district_key(w, 3)) == site
        assert directory.site(schema.customer_key(w, 1, 5)) == site
        assert directory.site(schema.stock_key(w, 17)) == site
        assert directory.site(schema.new_order_key(w, 0, 2)) == site
    with pytest.raises(ValueError):
        directory.site(("bogus", 1))


def test_generator_profile_mix():
    config = TPCCConfig(num_warehouses=4, read_only_fraction=0.5)
    workload = TPCCWorkload(config, num_nodes=4)
    rng = random.Random(1)
    profiles = Counter(
        workload.generate(rng, node_id=0).profile for _ in range(4000)
    )
    total = sum(profiles.values())
    ro_share = (profiles[ORDER_STATUS] + profiles[STOCK_LEVEL]) / total
    assert 0.46 < ro_share < 0.54
    # Standard mix among update profiles: NewOrder ~ Payment >> Delivery.
    assert profiles[NEW_ORDER] > profiles[DELIVERY]
    assert profiles[PAYMENT] > profiles[DELIVERY]


def test_generator_read_only_flags():
    workload = TPCCWorkload(TPCCConfig(num_warehouses=2), num_nodes=2)
    rng = random.Random(2)
    for _ in range(200):
        program = workload.generate(rng, 0)
        if program.profile in READ_ONLY_PROFILES:
            assert program.is_read_only
        else:
            assert program.profile in UPDATE_PROFILES
            assert not program.is_read_only


def test_local_warehouse_selection_stays_on_node():
    config = TPCCConfig(num_warehouses=8, warehouse_selection="local")
    workload = TPCCWorkload(config, num_nodes=4)
    assert workload._warehouses_by_node[1] == [1, 5]


def test_uniform_warehouse_selection_covers_all():
    config = TPCCConfig(num_warehouses=8, warehouse_selection="uniform",
                        read_only_fraction=0.0)
    workload = TPCCWorkload(config, num_nodes=4)
    rng = random.Random(3)
    # Drive NewOrder programs and observe which warehouse key is read first.
    seen = set()
    for _ in range(300):
        program = workload.generate(rng, node_id=0)
        first_key = {}

        class Probe:
            def read(self, key):
                first_key.setdefault("key", key)
                raise StopIteration  # abort the program after first read
                yield  # pragma: no cover

            def write(self, key, value):  # pragma: no cover
                pass

        try:
            list(program.run(Probe()) or [])
        except (StopIteration, RuntimeError):
            pass
        if "key" in first_key:
            seen.add(first_key["key"][1])
    assert len(seen) == 8, f"uniform selection should hit all warehouses: {seen}"


def test_requires_warehouse_per_node():
    with pytest.raises(ValueError):
        TPCCWorkload(TPCCConfig(num_warehouses=2), num_nodes=4)


def test_config_validation():
    with pytest.raises(ValueError):
        TPCCConfig(num_warehouses=0)
    with pytest.raises(ValueError):
        TPCCConfig(num_warehouses=1, read_only_fraction=2.0)
    with pytest.raises(ValueError):
        TPCCConfig(num_warehouses=1, min_order_lines=9, max_order_lines=3)
    with pytest.raises(ValueError):
        TPCCConfig(num_warehouses=1, warehouse_selection="nearest")
