"""Unit tests for the YCSB workload generator."""

import random

import pytest

from repro.workloads import YCSBConfig, YCSBWorkload
from repro.workloads.ycsb import READ_ONLY_PROFILE, UPDATE_PROFILE


def make(ro=0.5, keys=100, **kwargs):
    return YCSBWorkload(YCSBConfig(num_keys=keys, read_only_fraction=ro, **kwargs))


def test_load_items_covers_key_space():
    workload = make(keys=50)
    items = list(workload.load_items())
    assert len(items) == 50
    keys = {key for key, _value in items}
    assert keys == {YCSBWorkload.key(i) for i in range(50)}
    # The paper's 12-byte values.
    assert all(len(value) == 12 for _key, value in items)


def test_mix_matches_read_only_fraction():
    workload = make(ro=0.3, keys=1000)
    rng = random.Random(1)
    programs = [workload.generate(rng, node_id=0) for _ in range(3000)]
    ro_share = sum(p.is_read_only for p in programs) / len(programs)
    assert 0.26 < ro_share < 0.34
    profiles = {p.profile for p in programs}
    assert profiles == {READ_ONLY_PROFILE, UPDATE_PROFILE}


def test_profiles_flag_read_only_consistently():
    workload = make(ro=0.5)
    rng = random.Random(2)
    for _ in range(200):
        program = workload.generate(rng, 0)
        if program.profile == READ_ONLY_PROFILE:
            assert program.is_read_only
        else:
            assert not program.is_read_only


def test_update_program_rewrites_read_keys():
    """The paper's YCSB updates write exactly the keys they read."""
    workload = make(ro=0.0, keys=500)
    rng = random.Random(3)
    program = workload.generate(rng, 0)

    reads = []
    writes = {}

    class FakeCtx:
        def read(self, key):
            reads.append(key)
            return "old"
            yield  # pragma: no cover

        def write(self, key, value):
            writes[key] = value

    list(program.run(FakeCtx()) or [])
    assert sorted(reads) == sorted(writes)
    assert len(reads) == 2
    assert all(len(v) == 12 for v in writes.values())


def test_read_only_program_reads_two_distinct_keys():
    workload = make(ro=1.0, keys=500)
    rng = random.Random(4)
    program = workload.generate(rng, 0)

    reads = []

    class FakeCtx:
        def read(self, key):
            reads.append(key)
            return "v"
            yield  # pragma: no cover

        def write(self, key, value):  # pragma: no cover
            raise AssertionError("read-only profile must not write")

    list(program.run(FakeCtx()) or [])
    assert len(reads) == 2
    assert len(set(reads)) == 2


def test_zipfian_distribution_option():
    workload = make(keys=1000, distribution="zipfian")
    rng = random.Random(5)
    program = workload.generate(rng, 0)
    assert program.profile in (READ_ONLY_PROFILE, UPDATE_PROFILE)


def test_config_validation():
    with pytest.raises(ValueError):
        YCSBConfig(num_keys=0)
    with pytest.raises(ValueError):
        YCSBConfig(num_keys=10, read_only_fraction=1.5)
    with pytest.raises(ValueError):
        YCSBConfig(num_keys=10, keys_per_txn=0)
    with pytest.raises(ValueError):
        YCSBConfig(num_keys=10, distribution="normal")
