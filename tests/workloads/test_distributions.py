"""Unit tests for key-selection distributions."""

import random
from collections import Counter

import pytest

from repro.workloads import UniformChooser, ZipfianChooser, ZipfKeyGenerator


def test_uniform_covers_range():
    chooser = UniformChooser(10)
    rng = random.Random(1)
    seen = {chooser.next(rng) for _ in range(500)}
    assert seen == set(range(10))


def test_uniform_sample_distinct():
    chooser = UniformChooser(100)
    rng = random.Random(2)
    sample = chooser.sample(rng, 10)
    assert len(sample) == len(set(sample)) == 10
    assert all(0 <= item < 100 for item in sample)


def test_uniform_sample_too_many_rejected():
    with pytest.raises(ValueError):
        UniformChooser(3).sample(random.Random(0), 4)


def test_uniform_validates_size():
    with pytest.raises(ValueError):
        UniformChooser(0)


def test_uniform_roughly_flat():
    chooser = UniformChooser(10)
    rng = random.Random(3)
    counts = Counter(chooser.next(rng) for _ in range(20_000))
    assert max(counts.values()) / min(counts.values()) < 1.3


def test_zipfian_is_skewed():
    chooser = ZipfianChooser(1000, theta=0.99)
    rng = random.Random(4)
    counts = Counter(chooser.next(rng) for _ in range(20_000))
    top_share = sum(count for _item, count in counts.most_common(20)) / 20_000
    assert top_share > 0.3, "top 2% of items should absorb >30% of accesses"


def test_zipfian_stays_in_range():
    chooser = ZipfianChooser(50, theta=0.8)
    rng = random.Random(5)
    assert all(0 <= chooser.next(rng) < 50 for _ in range(2000))


def test_zipfian_sample_distinct():
    chooser = ZipfianChooser(100, theta=0.9)
    sample = chooser.sample(random.Random(6), 5)
    assert len(set(sample)) == 5


def test_zipfian_validates_arguments():
    with pytest.raises(ValueError):
        ZipfianChooser(0)
    with pytest.raises(ValueError):
        ZipfianChooser(10, theta=1.5)
    with pytest.raises(ValueError):
        ZipfianChooser(3).sample(random.Random(0), 4)


def test_deterministic_given_seed():
    a = [ZipfianChooser(100).next(random.Random(7)) for _ in range(1)]
    b = [ZipfianChooser(100).next(random.Random(7)) for _ in range(1)]
    assert a == b


def test_zipf_generator_rank_ordered():
    gen = ZipfKeyGenerator(100, s=1.1)
    probs = [gen.probability(rank) for rank in range(100)]
    assert probs == sorted(probs, reverse=True)
    assert abs(sum(probs) - 1.0) < 1e-9


def test_zipf_generator_heavy_tail_skew():
    gen = ZipfKeyGenerator(1000, s=1.1)
    rng = random.Random(8)
    counts = Counter(gen.next(rng) for _ in range(20_000))
    assert counts.most_common(1)[0][0] == 0, "rank 0 must be the hottest"
    top_share = sum(count for _item, count in counts.most_common(10)) / 20_000
    assert top_share > 0.4, "top 1% of ranks should absorb >40% under s=1.1"


def test_zipf_generator_stays_in_range():
    gen = ZipfKeyGenerator(17, s=2.0)
    rng = random.Random(9)
    assert all(0 <= gen.next(rng) < 17 for _ in range(2000))


def test_zipf_generator_sample_distinct():
    gen = ZipfKeyGenerator(100, s=1.1)
    sample = gen.sample(random.Random(10), 5)
    assert len(set(sample)) == 5


def test_zipf_generator_validates_arguments():
    with pytest.raises(ValueError):
        ZipfKeyGenerator(0)
    with pytest.raises(ValueError):
        ZipfKeyGenerator(10, s=0.0)
    with pytest.raises(ValueError):
        ZipfKeyGenerator(3).sample(random.Random(0), 4)


def test_zipf_generator_deterministic_given_seed():
    a = [ZipfKeyGenerator(100).next(random.Random(11)) for _ in range(20)]
    b = [ZipfKeyGenerator(100).next(random.Random(11)) for _ in range(20)]
    assert a == b
