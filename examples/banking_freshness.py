#!/usr/bin/env python3
"""Update-transaction freshness under congestion (the paper's Figure 4).

A payment processor on node 1 updates an exchange rate; a trading service
on node 0 reads the rate and writes a trade record against it.  The
asynchronous Propagate messages are congested (delayed 5 ms):

* Walter's trader reads a *stale* rate and its commit fails validation,
  repeatedly, until the Propagate finally lands;
* FW-KV's trader reads the *latest* rate on its first access, advances
  its snapshot, and commits on the first attempt.

Run with::

    python examples/banking_freshness.py
"""

from repro import Cluster, ClusterConfig, NetworkConfig
from repro.cluster import ExplicitDirectory

PROPAGATE_DELAY = 5e-3
PLACEMENT = {"rate:EUR": 1, "trades:log": 0}


def run(protocol):
    network = NetworkConfig(jitter=0.0).with_propagate_delay(PROPAGATE_DELAY)
    cluster = Cluster(
        protocol,
        ClusterConfig(num_nodes=2, seed=3, network=network),
        directory=ExplicitDirectory(PLACEMENT),
    )
    cluster.load("rate:EUR", 1.0500)
    cluster.load("trades:log", [])

    outcome = {}

    def rate_update():
        """Node 1 publishes a fresh exchange rate at t=0."""
        node = cluster.node(1)
        txn = node.begin(is_read_only=False)
        node.write(txn, "rate:EUR", 1.0625)
        ok = yield from node.commit(txn)
        assert ok

    def trade():
        """Node 0 trades against the latest rate at t=1ms, retrying aborts."""
        yield cluster.sim.timeout(1e-3)
        attempts = 0
        while True:
            attempts += 1
            node = cluster.node(0)
            txn = node.begin(is_read_only=False)
            rate = yield from node.read(txn, "rate:EUR")
            log = yield from node.read(txn, "trades:log")
            node.write(txn, "rate:EUR", rate)  # revalidated: must be current
            node.write(txn, "trades:log", log + [("buy", 1000, rate)])
            ok = yield from node.commit(txn)
            if ok:
                outcome.update(
                    attempts=attempts,
                    rate_used=rate,
                    committed_at_ms=cluster.sim.now * 1e3,
                )
                return
            yield cluster.sim.timeout(100e-6)

    cluster.spawn(rate_update())
    cluster.spawn(trade())
    cluster.run()
    outcome["messages"] = cluster.network.stats.messages_sent
    return outcome


def main() -> None:
    print(f"Propagate messages congested: +{PROPAGATE_DELAY * 1e3:.0f} ms\n")
    results = {protocol: run(protocol) for protocol in ("walter", "fwkv")}
    for protocol, outcome in results.items():
        print(f"=== {protocol} ===")
        print(f"  rate used by the trade : {outcome['rate_used']}")
        print(f"  commit attempts        : {outcome['attempts']}")
        print(f"  committed at           : {outcome['committed_at_ms']:.2f} ms")
        print(f"  messages on the wire   : {outcome['messages']}")
        print()

    walter, fwkv = results["walter"], results["fwkv"]
    saved = walter["attempts"] - fwkv["attempts"]
    print(
        "FW-KV read the freshest rate on its first contact, committed on "
        f"attempt 1 (Walter needed {walter['attempts']}), and saved "
        f"{walter['messages'] - fwkv['messages']} messages by avoiding "
        f"{saved} abort/retry cycle(s) -- the paper's Figure 4 behaviour.\n"
        "Note how FW-KV converts Walter's abort storm into a single "
        "in-order wait that overlaps the congestion delay."
    )
    assert fwkv["attempts"] == 1
    assert fwkv["rate_used"] == 1.0625
    assert walter["attempts"] > 1


if __name__ == "__main__":
    main()
