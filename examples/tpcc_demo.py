#!/usr/bin/env python3
"""TPC-C on a simulated cluster: FW-KV vs Walter vs the 2PC baseline.

Runs the full key-value TPC-C port (NewOrder, Payment, Delivery,
OrderStatus, StockLevel) against a 4-node cluster under each protocol and
prints a comparison: throughput, abort rate, per-profile commits, and
read-only snapshot freshness.

Run with::

    python examples/tpcc_demo.py
"""

from repro import ClusterConfig, RunConfig
from repro.harness import format_table, run_experiment
from repro.workloads import TPCCConfig, TPCCWorkload
from repro.workloads.tpcc import tpcc_directory

NODES = 4
WAREHOUSES_PER_NODE = 4


def main() -> None:
    sizing = TPCCConfig(
        num_warehouses=NODES * WAREHOUSES_PER_NODE,
        districts_per_warehouse=4,
        customers_per_district=30,
        num_items=200,
        read_only_fraction=0.5,
    )
    print(
        f"TPC-C: {sizing.num_warehouses} warehouses on {NODES} nodes "
        f"(~{sizing.total_keys} keys), 50% read-only mix, 5 clients/node\n"
    )

    rows = []
    profiles = {}
    for protocol in ("fwkv", "walter", "2pc"):
        workload = TPCCWorkload(sizing, num_nodes=NODES, seed=11)
        result = run_experiment(
            protocol,
            workload,
            ClusterConfig(num_nodes=NODES, seed=11),
            RunConfig(duration=0.06, warmup=0.015),
            directory=tpcc_directory(NODES),
        )
        metrics = result.metrics
        rows.append(
            {
                "protocol": protocol,
                "throughput_ktps": result.throughput_ktps,
                "abort_rate": result.abort_rate,
                "mean_latency_ms": metrics["latency"]["mean"] * 1e3,
                "stale_ro_reads": metrics["stale_read_fraction"],
            }
        )
        profiles[protocol] = metrics["commits_by_profile"]

    print(
        format_table(
            rows,
            ["protocol", "throughput_ktps", "abort_rate", "mean_latency_ms",
             "stale_ro_reads"],
            title="Protocol comparison",
        )
    )

    print("\nCommitted transactions by profile:")
    profile_names = sorted({name for p in profiles.values() for name in p})
    profile_rows = [
        {"profile": name, **{proto: profiles[proto].get(name, 0)
                             for proto in profiles}}
        for name in profile_names
    ]
    print(format_table(profile_rows, ["profile", "fwkv", "walter", "2pc"]))

    psi = [r for r in rows if r["protocol"] in ("fwkv", "walter")]
    baseline = next(r for r in rows if r["protocol"] == "2pc")
    speedup = min(r["throughput_ktps"] for r in psi) / baseline["throughput_ktps"]
    print(f"\nPSI protocols outperform the serializable baseline by >= "
          f"{speedup:.1f}x on this workload.")


if __name__ == "__main__":
    main()
