#!/usr/bin/env python3
"""Debugging a protocol run with the structured tracer.

Enables selective event tracing on a small FW-KV cluster, runs a
conflicting pair of transactions, and prints the interleaved protocol
timeline -- the fastest way to understand *why* a transaction aborted.

Run with::

    python examples/trace_debugging.py
"""

from repro import Cluster, ClusterConfig
from repro.cluster import ExplicitDirectory


def main() -> None:
    cluster = Cluster(
        "fwkv",
        ClusterConfig(num_nodes=2, seed=1),
        directory=ExplicitDirectory({"stock": 1}),
    )
    cluster.load("stock", 100)

    # Record the full protocol timeline.
    cluster.tracer.enable("begin", "read", "commit", "abort", "prepare", "decide")

    read_done = cluster.sim.event()
    rival_done = cluster.sim.event()

    def slow_buyer(results):
        node = cluster.node(0)
        txn = node.begin(is_read_only=False)
        stock = yield from node.read(txn, "stock")
        read_done.succeed()
        yield rival_done  # thinks for a while; a rival buys meanwhile
        node.write(txn, "stock", stock - 10)
        ok = yield from node.commit(txn)
        results["slow"] = (txn.txn_id, ok)

    def fast_buyer(results):
        yield read_done
        node = cluster.node(1)
        txn = node.begin(is_read_only=False)
        stock = yield from node.read(txn, "stock")
        node.write(txn, "stock", stock - 25)
        ok = yield from node.commit(txn)
        results["fast"] = (txn.txn_id, ok)
        rival_done.succeed()

    results = {}
    cluster.spawn(slow_buyer(results))
    cluster.spawn(fast_buyer(results))
    cluster.run()

    print("protocol timeline:")
    print(cluster.tracer.dump())
    print()

    slow_id, slow_ok = results["slow"]
    fast_id, fast_ok = results["fast"]
    print(f"fast buyer (txn {fast_id}): {'committed' if fast_ok else 'aborted'}")
    print(f"slow buyer (txn {slow_id}): {'committed' if slow_ok else 'aborted'}")
    assert fast_ok and not slow_ok

    print("\nwhy did the slow buyer abort?  its trace tells the story:")
    for record in cluster.tracer.for_txn(slow_id):
        print("  " + cluster.tracer.format(record))
    print(
        "\n-> it read stock version "
        f"{[r for r in cluster.tracer.for_txn(slow_id) if r.event == 'read'][0].details['vid']} "
        "but by commit time the fast buyer had installed a newer version, "
        "so first-committer-wins validation rejected it."
    )
    final = cluster.node(1).store.chain("stock").latest.value
    print(f"final stock: {final} (only the fast buyer's purchase applied)")


if __name__ == "__main__":
    main()
