#!/usr/bin/env python3
"""The long-fork anomaly on a social network, and how FW-KV avoids it.

The paper's motivating story (Sections 1 and 3.3): two users publish posts
and alert their friends out of band; two readers then check both feeds.
Under Walter, one reader can see only the first post and the other only
the second -- they disagree on what happened, even though both posts were
fully published before either reader looked.  FW-KV's fresh first-contact
reads eliminate this *observable* long fork.

Run with::

    python examples/social_network.py
"""

from repro import Cluster, ClusterConfig, NetworkConfig
from repro.cluster import ExplicitDirectory
from repro.metrics import find_long_forks
from repro.net.message import MessageType

#: Feed placement: alice's feed lives on node 1, bob's on node 2.
PLACEMENT = {"feed:alice": 1, "feed:bob": 2}
SLOW_LINKS = {(1, 3), (2, 0)}  # congested Propagate paths


def delay_policy(envelope):
    """Congestion: Propagates on two links lag by 10 ms."""
    if envelope.msg_type == MessageType.PROPAGATE and (
        (envelope.src, envelope.dst) in SLOW_LINKS
    ):
        return 10e-3
    return 0.0


def run(protocol):
    cluster = Cluster(
        protocol,
        ClusterConfig(num_nodes=4, seed=7, network=NetworkConfig(jitter=0.0)),
        directory=ExplicitDirectory(PLACEMENT),
        record_history=True,
    )
    cluster.network.delay_policy = delay_policy
    cluster.load("feed:alice", "(no posts yet)")
    cluster.load("feed:bob", "(no posts yet)")

    def publish(node_id, feed, text):
        node = cluster.node(node_id)
        txn = node.begin(is_read_only=False)
        node.write(txn, feed, text)
        ok = yield from node.commit(txn)
        assert ok

    observations = {}

    def check_feeds(node_id, order, label):
        # Both posts are committed well before t=1ms; the readers start
        # after being alerted out of band.
        yield cluster.sim.timeout(1e-3)
        node = cluster.node(node_id)
        txn = node.begin(is_read_only=True)
        seen = {}
        for feed in order:
            seen[feed] = yield from node.read(txn, feed)
        yield from node.commit(txn)
        observations[label] = seen

    cluster.spawn(publish(1, "feed:alice", "alice: check out my talk!"))
    cluster.spawn(publish(2, "feed:bob", "bob: great news everyone"))
    cluster.spawn(check_feeds(0, ["feed:alice", "feed:bob"], "carol"))
    cluster.spawn(check_feeds(3, ["feed:bob", "feed:alice"], "dave"))
    cluster.run()

    forks = find_long_forks(cluster.finalized_history())
    return observations, forks


def main() -> None:
    for protocol in ("walter", "fwkv"):
        observations, forks = run(protocol)
        print(f"=== {protocol} ===")
        for reader, seen in sorted(observations.items()):
            print(f"  {reader} sees:")
            for feed, value in sorted(seen.items()):
                print(f"    {feed}: {value}")
        observable = [f for f in forks if f.observable]
        if observable:
            print(
                f"  !! long fork: the two readers observed the two posts in\n"
                f"     opposite orders, after both were fully published "
                f"({len(observable)} witness(es))"
            )
        else:
            print("  no observable long fork: both readers agree")
        print()


if __name__ == "__main__":
    main()
