#!/usr/bin/env python3
"""Site availability: surviving a primary crash with zero lost writes.

The FW-KV paper assumes every preferred site "is highly available,
meaning the site is expected to implement a replication technique to
resist faults" (Section 2.2), and keeps replication out of the
concurrency-control story.  This example shows that substrate in action:
a 3-replica primary-backup group absorbs writes, loses its primary
mid-stream, fails over, and continues -- with every committed write
intact.

Run with::

    python examples/replicated_site.py
"""

from repro.replication import ReplicaGroup
from repro.sim import Simulator


def main() -> None:
    sim = Simulator()
    group = ReplicaGroup(sim, num_replicas=3)
    committed = []

    def writer(first, last):
        for i in range(first, last):
            result = yield from group.submit(("put", f"order:{i}", f"item-{i}"))
            committed.append((f"order:{i}", result, sim.now))

    # Phase 1: write through the initial primary (replica 0).
    proc = sim.spawn(writer(0, 8))
    while not proc.triggered:
        sim.step()
    primary = group.primary()
    print(f"phase 1: {len(committed)} writes committed via replica "
          f"{primary.replica_id} at t={sim.now * 1e3:.2f} ms")

    # Crash it.
    crashed = group.crash_primary()
    print(f"\n!! replica {crashed.replica_id} (the primary) crashes")

    # Failure detection + deterministic succession.
    sim.run(until=sim.now + 30e-3)
    new_primary = group.primary()
    print(f"   replica {new_primary.replica_id} takes over "
          f"(epoch {new_primary.epoch}) at t={sim.now * 1e3:.2f} ms")

    survivors = {key: new_primary.sm.get(key) for key, _r, _t in committed}
    lost = [key for key, value in survivors.items() if value is None]
    print(f"   committed writes present on the new primary: "
          f"{len(survivors) - len(lost)}/{len(survivors)} (lost: {len(lost)})")
    assert not lost, "synchronous replication must not lose committed writes"

    # Phase 2: the site keeps serving.
    proc = sim.spawn(writer(8, 12))
    while not proc.triggered:
        sim.step()
    print(f"\nphase 2: {len(committed) - 8} more writes committed via "
          f"replica {group.primary().replica_id}")

    sim.run(until=sim.now + 5e-3)
    live_snapshots = [r.sm.snapshot() for r in group.live_replicas()]
    assert all(s == live_snapshots[0] for s in live_snapshots)
    print(f"all {len(group.live_replicas())} live replicas agree on "
          f"{len(live_snapshots[0])} keys")
    group.shutdown()


if __name__ == "__main__":
    main()
