#!/usr/bin/env python3
"""Quickstart: a 4-node FW-KV cluster, bank-account transfers, fresh reads.

Run with::

    python examples/quickstart.py

Demonstrates the public API end to end: building a cluster, loading data,
writing transaction logic as generator functions, and inspecting results.
"""

from repro import Cluster, ClusterConfig


def main() -> None:
    # A 4-node deployment with default (paper-like) network and cost model.
    cluster = Cluster("fwkv", ClusterConfig(num_nodes=4, seed=42))

    # Load initial data; each key lives on its consistent-hash site.
    accounts = {f"account:{name}": 100 for name in ("alice", "bob", "carol")}
    cluster.load_many(accounts.items())

    def transfer(node_id, src, dst, amount, results):
        """Move money between two accounts, atomically."""
        node = cluster.node(node_id)
        txn = node.begin(is_read_only=False)
        src_balance = yield from node.read(txn, src)
        dst_balance = yield from node.read(txn, dst)
        node.write(txn, src, src_balance - amount)
        node.write(txn, dst, dst_balance + amount)
        committed = yield from node.commit(txn)
        results.append((src, dst, amount, "committed" if committed else "aborted"))

    def audit(node_id, results):
        """Read-only: snapshot of every balance (never aborts)."""
        node = cluster.node(node_id)
        txn = node.begin(is_read_only=True)
        snapshot = {}
        for key in sorted(accounts):
            snapshot[key] = yield from node.read(txn, key)
        yield from node.commit(txn)
        results.append(snapshot)

    transfers = []
    audits = []
    # Three concurrent transfers from different nodes...
    cluster.spawn(transfer(0, "account:alice", "account:bob", 30, transfers))
    cluster.spawn(transfer(1, "account:bob", "account:carol", 10, transfers))
    cluster.spawn(transfer(2, "account:carol", "account:alice", 5, transfers))
    # ...and a concurrent auditor.
    cluster.spawn(audit(3, audits))
    cluster.run()

    print("transfers:")
    for src, dst, amount, outcome in transfers:
        print(f"  {src} -> {dst}: {amount:>3}  [{outcome}]")

    print(f"concurrent audit snapshot: {audits[0]}")
    total = sum(audits[0].values())
    print(f"audit total: {total} (money is conserved in every snapshot)")
    assert total == 300

    final = []
    cluster.spawn(audit(0, final))
    cluster.run()
    print(f"final balances: {final[0]}")
    assert sum(final[0].values()) == 300

    print(f"virtual time elapsed: {cluster.sim.now * 1e3:.3f} ms")
    print(f"messages exchanged: {cluster.network.stats.messages_sent}")


if __name__ == "__main__":
    main()
