"""Shim for environments without PEP 517 wheel support (offline installs)."""

from setuptools import setup

setup()
