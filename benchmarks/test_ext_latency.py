"""Extension: transaction latency distributions per protocol.

The paper discusses latency qualitatively (Section 5.1: FW-KV's read-only
latency is comparable to Walter's when version-access-sets are small).
The simulator measures it directly: p50/p95/p99 per transaction class.

Expected shape: PSI read-only latencies clearly below the 2PC baseline's
(whose read-only commits pay two extra round trips); FW-KV's read-only
latency within a small factor of Walter's.
"""

from repro.config import ClusterConfig, RunConfig
from repro.harness import run_experiment
from repro.workloads import YCSBConfig, YCSBWorkload
from scales import emit_table

NODES = 8
KEYS = 50_000
RUN = RunConfig(duration=0.02, warmup=0.006)


def run_latency():
    rows = []
    for protocol in ("fwkv", "walter", "2pc"):
        workload = YCSBWorkload(YCSBConfig(num_keys=KEYS, read_only_fraction=0.5))
        result = run_experiment(
            protocol,
            workload,
            ClusterConfig(num_nodes=NODES, clients_per_node=5, seed=1),
            RUN,
        )
        ro = result.metrics["ro_latency_percentiles"]
        up = result.metrics["update_latency_percentiles"]
        rows.append(
            {
                "protocol": protocol,
                "ro_p50_us": ro["p50"] * 1e6,
                "ro_p99_us": ro["p99"] * 1e6,
                "up_p50_us": up["p50"] * 1e6,
                "up_p99_us": up["p99"] * 1e6,
            }
        )
    return rows


def test_ext_latency(benchmark):
    rows = benchmark.pedantic(run_latency, rounds=1, iterations=1)
    emit_table(
        "ext_latency", rows, ["protocol", "ro_p50_us", "ro_p99_us", "up_p50_us", "up_p99_us"],
        title="Extension: latency percentiles (us), YCSB 50% RO, 50k keys",
    )
    by_protocol = {row["protocol"]: row for row in rows}

    # The baseline's read-only commit phase costs extra round trips.
    assert by_protocol["2pc"]["ro_p50_us"] > 1.3 * by_protocol["walter"]["ro_p50_us"]
    assert by_protocol["2pc"]["ro_p50_us"] > 1.3 * by_protocol["fwkv"]["ro_p50_us"]

    # FW-KV's read-only latency is comparable to Walter's (paper 5.1).
    assert (
        by_protocol["fwkv"]["ro_p50_us"] <= 1.25 * by_protocol["walter"]["ro_p50_us"]
    )
