"""Extension: skewed (zipfian) access, which the paper deliberately skips.

The paper evaluates uniform access only ("we do not test the case of a
skewed access distribution").  This extension asks what happens to the
FW-KV-vs-Walter gap when a zipfian hot set concentrates both conflicts and
version-access-set traffic on a few keys.

Expected shape: skew raises abort rates for both protocols and inflates
FW-KV's collected anti-dependency sets (hot versions gather many reader
registrations before being overwritten), while the throughput gap stays
bounded.
"""

from repro.config import ClusterConfig, RunConfig
from repro.harness import run_experiment
from repro.workloads import YCSBConfig, YCSBWorkload
from scales import emit_table

NODES = 8
KEYS = 20_000
RUN = RunConfig(duration=0.02, warmup=0.006)


def _run(protocol, distribution):
    workload = YCSBWorkload(
        YCSBConfig(
            num_keys=KEYS,
            read_only_fraction=0.5,
            distribution=distribution,
        )
    )
    return run_experiment(
        protocol,
        workload,
        ClusterConfig(num_nodes=NODES, clients_per_node=5, seed=1),
        RUN,
    )


def run_skew():
    rows = []
    for distribution in ("uniform", "zipfian"):
        for protocol in ("fwkv", "walter"):
            result = _run(protocol, distribution)
            rows.append(
                {
                    "distribution": distribution,
                    "protocol": protocol,
                    "throughput_ktps": result.throughput_ktps,
                    "abort_rate": result.abort_rate,
                    "mean_antidep": result.mean_antidep,
                }
            )
    return rows


def test_ext_skew(benchmark):
    rows = benchmark.pedantic(run_skew, rounds=1, iterations=1)
    emit_table(
        "ext_skew", rows, ["distribution", "protocol", "throughput_ktps", "abort_rate",
             "mean_antidep"],
        title="Extension: uniform vs zipfian access (50% RO, 20k keys)",
    )

    by_point = {(row["distribution"], row["protocol"]): row for row in rows}

    # Skew concentrates conflicts: abort rates rise for both protocols.
    for protocol in ("fwkv", "walter"):
        assert (
            by_point[("zipfian", protocol)]["abort_rate"]
            >= by_point[("uniform", protocol)]["abort_rate"]
        )

    # Hot keys gather more reader registrations before overwrite.
    assert (
        by_point[("zipfian", "fwkv")]["mean_antidep"]
        >= by_point[("uniform", "fwkv")]["mean_antidep"]
    )

    # Finding: under heavy skew (theta=0.99) FW-KV's shared read locks on
    # hot keys serialise against the constant stream of update commits,
    # and its overhead *exceeds* the paper's uniform-workload envelope
    # (we measure ~30%, vs <=20% on uniform YCSB) -- a regime the paper
    # explicitly did not evaluate.
    zip_fwkv = by_point[("zipfian", "fwkv")]["throughput_ktps"]
    zip_walter = by_point[("zipfian", "walter")]["throughput_ktps"]
    assert zip_fwkv >= 0.55 * zip_walter
