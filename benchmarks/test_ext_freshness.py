"""Extension: quantify snapshot freshness directly.

The paper's central claim -- FW-KV's read-only transactions observe
fresher data than Walter's -- is argued qualitatively and through abort
rates.  The simulator can measure it directly: for every read-only read we
record the *gap* (how many committed versions newer than the returned one
existed at the serving node) and whether a first contact returned the
latest version.

Expected shape: FW-KV's first contacts are always fresh (gap 0) by
construction; Walter's reads go stale as soon as propagation lags, and
dramatically so under injected congestion.
"""

from repro.config import ClusterConfig, NetworkConfig, RunConfig
from repro.harness import run_experiment
from repro.workloads import YCSBConfig, YCSBWorkload
from scales import emit_table

NODES = 8
KEYS = 10_000  # small key space: frequent overwrites make staleness visible
RUN = RunConfig(duration=0.02, warmup=0.006)


def _run(protocol, delay):
    network = NetworkConfig()
    if delay:
        network = network.with_propagate_delay(delay)
    workload = YCSBWorkload(YCSBConfig(num_keys=KEYS, read_only_fraction=0.5))
    return run_experiment(
        protocol,
        workload,
        ClusterConfig(num_nodes=NODES, clients_per_node=5, seed=1, network=network),
        RUN,
    )


def run_freshness():
    rows = []
    for delay_us in (0, 1000):
        for protocol in ("fwkv", "walter"):
            result = _run(protocol, delay_us * 1e-6)
            metrics = result.metrics
            first = metrics["first_contact_reads"]
            fresh = metrics["first_contact_fresh"]
            rows.append(
                {
                    "delay_us": delay_us,
                    "protocol": protocol,
                    "stale_ro_read_frac": metrics["stale_read_fraction"],
                    "mean_gap_versions": metrics["ro_read_gap"]["mean"],
                    "max_gap_versions": metrics["ro_read_gap"]["max"],
                    "first_contact_fresh": fresh / first if first else 1.0,
                }
            )
    return rows


def test_ext_freshness(benchmark):
    rows = benchmark.pedantic(run_freshness, rounds=1, iterations=1)
    emit_table(
        "ext_freshness", rows, ["delay_us", "protocol", "stale_ro_read_frac",
             "mean_gap_versions", "max_gap_versions", "first_contact_fresh"],
        title="Extension: read-only snapshot freshness (50% RO, 10k keys)",
    )

    by_point = {(row["delay_us"], row["protocol"]): row for row in rows}

    # FW-KV's defining guarantee: a first contact observes the latest
    # committed version at that node -- except when the version-access-set
    # already carries the reader's identifier (an anti-dependency
    # propagated there by a concurrent cross-node commit, the Figure 2
    # mechanism), in which case consistency correctly wins over
    # freshness.  Measured: ~99.9% fresh.
    for delay in (0, 1000):
        assert by_point[(delay, "fwkv")]["first_contact_fresh"] >= 0.99

    # Walter reads go stale under congestion; FW-KV stays fresher.
    walter_delayed = by_point[(1000, "walter")]
    fwkv_delayed = by_point[(1000, "fwkv")]
    assert walter_delayed["stale_ro_read_frac"] > fwkv_delayed["stale_ro_read_frac"]
    assert walter_delayed["mean_gap_versions"] > fwkv_delayed["mean_gap_versions"]
    assert (
        walter_delayed["stale_ro_read_frac"]
        > by_point[(0, "walter")]["stale_ro_read_frac"]
    )
