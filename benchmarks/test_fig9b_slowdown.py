"""Figure 9b: FW-KV throughput slowdown vs Walter on TPC-C.

Paper claims reproduced here: the slowdown is largest at the smallest
warehouse count (highest contention on the warehouse record, whose
version-access-set every read-only transaction joins) and shrinks as
warehouses per node grow.
"""

from repro.harness.experiments import figure9b_slowdown
from scales import SCALE, emit_table

COLUMNS = ["figure", "ro", "w_per_node", "walter_ktps", "fwkv_ktps", "slowdown_pct"]


def run_figure9b():
    return figure9b_slowdown(**SCALE.fig9b)


def test_fig9b_slowdown(benchmark):
    rows = benchmark.pedantic(run_figure9b, rounds=1, iterations=1)
    emit_table(
        "fig9b_slowdown", rows, COLUMNS,
        title="Figure 9b: FW-KV slowdown vs Walter (percent)",
    )

    # Slowdown stays within the paper's envelope (<= ~28%, plus noise
    # margin for the scaled-down runs).
    for row in rows:
        assert row["slowdown_pct"] <= 35.0, f"slowdown out of envelope: {row}"

    # Contention trend: the highest-contention configuration (fewest
    # warehouses per node) must show at least as much slowdown as the
    # lowest-contention one, per read-only mix.  Only meaningful when a
    # slowdown actually exists -- at low read-only shares FW-KV often
    # comes out *ahead* (it aborts less), leaving pure noise around zero.
    by_ro = {}
    for row in rows:
        by_ro.setdefault(row["ro"], {})[row["w_per_node"]] = row["slowdown_pct"]
    for ro, series in by_ro.items():
        wpns = sorted(series)
        if max(series.values()) < 2.0:
            continue  # noise regime: no material slowdown anywhere
        assert series[wpns[0]] >= series[wpns[-1]] - 5.0, (
            f"slowdown should not grow with more warehouses (ro={ro}): {series}"
        )
