"""Extension: the 80% read-only point the paper omits.

Section 5: "We do not include the test with 80% read-only transactions
because performance of both Walter and FW-KV are almost identical using
this configuration ... If version-access-sets are almost empty, the
performance of read-only transactions in both competitors will be
similar."  This bench verifies that omitted claim directly.
"""

from repro.config import ClusterConfig, RunConfig
from repro.harness import run_experiment
from repro.workloads import YCSBConfig, YCSBWorkload
from scales import emit_table

NODES = 8
KEYS = 50_000
RUN = RunConfig(duration=0.02, warmup=0.006)


def run_80ro():
    rows = []
    for protocol in ("fwkv", "walter"):
        workload = YCSBWorkload(
            YCSBConfig(num_keys=KEYS, read_only_fraction=0.8)
        )
        result = run_experiment(
            protocol,
            workload,
            ClusterConfig(num_nodes=NODES, clients_per_node=5, seed=1),
            RUN,
        )
        rows.append(
            {
                "protocol": protocol,
                "throughput_ktps": result.throughput_ktps,
                "abort_rate": result.abort_rate,
                "mean_antidep": result.mean_antidep,
                "vas_inspected_mean": result.metrics["vas_inspected"]["mean"],
            }
        )
    return rows


def test_ext_80_percent_read_only(benchmark):
    rows = benchmark.pedantic(run_80ro, rounds=1, iterations=1)
    emit_table(
        "ext_80ro", rows,
        ["protocol", "throughput_ktps", "abort_rate", "mean_antidep",
         "vas_inspected_mean"],
        title="Extension: the omitted 80% read-only configuration (50k keys)",
    )
    by_protocol = {row["protocol"]: row for row in rows}
    fwkv = by_protocol["fwkv"]["throughput_ktps"]
    walter = by_protocol["walter"]["throughput_ktps"]
    # "Almost identical": we allow 3%.
    assert abs(fwkv - walter) / walter < 0.03, (
        f"80% RO should be near-identical: fwkv={fwkv}, walter={walter}"
    )
    # And the stated reason holds: the anti-dependency sets are ~empty.
    assert by_protocol["fwkv"]["mean_antidep"] < 0.5
