"""Benchmark scales: how much of each paper figure to regenerate.

The paper's full grid (20 nodes, 500k keys, 32 warehouses/node, 5 trials)
is hours of simulation; the default scale regenerates every figure's
*shape* -- same axes, same competitors, same contention ordering -- in
minutes.  Select with ``REPRO_BENCH_SCALE``:

* ``quick``   -- smoke scale, a couple of minutes total;
* ``default`` -- the committed scale used for EXPERIMENTS.md;
* ``paper``   -- the paper's parameters (very long; run selectively).

Every scaled-down parameter is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict

from repro.config import RunConfig
from repro.workloads.tpcc import TPCCConfig

#: Scaled-down TPC-C sizing used by default-scale benches; contention
#: behaviour is controlled by warehouses per node, which the benches vary.
BENCH_TPCC_SIZING = TPCCConfig(
    num_warehouses=1,  # replaced per experiment
    districts_per_warehouse=4,
    customers_per_district=24,
    num_items=120,
    initial_orders_per_district=3,
    min_order_lines=3,
    max_order_lines=6,
    stock_level_orders=3,
)


@dataclass
class Scale:
    name: str
    fig5: Dict = field(default_factory=dict)
    fig6: Dict = field(default_factory=dict)
    fig7: Dict = field(default_factory=dict)
    fig8: Dict = field(default_factory=dict)
    fig9a: Dict = field(default_factory=dict)
    fig9b: Dict = field(default_factory=dict)


QUICK = Scale(
    name="quick",
    fig5=dict(
        nodes=(4, 8),
        key_counts=(5_000, 50_000),
        run=RunConfig(duration=0.012, warmup=0.004),
    ),
    fig6=dict(
        key_counts=(5_000, 20_000, 50_000),
        num_nodes=8,
        run=RunConfig(duration=0.015, warmup=0.005),
    ),
    fig7=dict(
        key_counts=(5_000, 20_000, 50_000),
        num_nodes=8,
        run=RunConfig(duration=0.015, warmup=0.005),
    ),
    fig8=dict(
        nodes=(4, 8),
        warehouses_per_node=(2, 8),
        run=RunConfig(duration=0.04, warmup=0.012),
        tpcc_sizing=BENCH_TPCC_SIZING,
    ),
    fig9a=dict(
        warehouses_per_node=(2, 8),
        num_nodes=8,
        run=RunConfig(duration=0.04, warmup=0.012),
        tpcc_sizing=BENCH_TPCC_SIZING,
    ),
    fig9b=dict(
        warehouses_per_node=(2, 4, 8),
        num_nodes=8,
        run=RunConfig(duration=0.04, warmup=0.012),
        tpcc_sizing=BENCH_TPCC_SIZING,
    ),
)

DEFAULT = Scale(
    name="default",
    fig5=dict(
        nodes=(5, 10, 20),
        key_counts=(20_000, 100_000),
        run=RunConfig(duration=0.025, warmup=0.008),
    ),
    fig6=dict(
        key_counts=(20_000, 50_000, 100_000),
        num_nodes=12,
        run=RunConfig(duration=0.03, warmup=0.008),
    ),
    fig7=dict(
        key_counts=(20_000, 50_000, 100_000),
        num_nodes=12,
        run=RunConfig(duration=0.03, warmup=0.008),
    ),
    fig8=dict(
        nodes=(4, 8),
        warehouses_per_node=(2, 8),
        run=RunConfig(duration=0.06, warmup=0.015),
        tpcc_sizing=BENCH_TPCC_SIZING,
    ),
    fig9a=dict(
        warehouses_per_node=(2, 8),
        num_nodes=8,
        run=RunConfig(duration=0.06, warmup=0.015),
        tpcc_sizing=BENCH_TPCC_SIZING,
    ),
    fig9b=dict(
        warehouses_per_node=(2, 4, 8),
        num_nodes=8,
        run=RunConfig(duration=0.06, warmup=0.015),
        tpcc_sizing=BENCH_TPCC_SIZING,
    ),
)

PAPER = Scale(
    name="paper",
    fig5=dict(run=RunConfig(duration=0.2, warmup=0.05)),
    fig6=dict(run=RunConfig(duration=0.2, warmup=0.05)),
    fig7=dict(run=RunConfig(duration=0.2, warmup=0.05)),
    fig8=dict(run=RunConfig(duration=0.3, warmup=0.08)),
    fig9a=dict(run=RunConfig(duration=0.3, warmup=0.08)),
    fig9b=dict(run=RunConfig(duration=0.3, warmup=0.08)),
)

_SCALES = {"quick": QUICK, "default": DEFAULT, "paper": PAPER}

SCALE = _SCALES[os.environ.get("REPRO_BENCH_SCALE", "default")]

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print a figure's table and persist it under benchmarks/results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.{SCALE.name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")


def emit_table(name: str, rows, columns, title: str) -> None:
    """Print + persist a figure both as an aligned table and as CSV."""
    import csv

    from repro.harness.report import format_table

    emit(name, format_table(rows, columns, title=title))
    csv_path = os.path.join(RESULTS_DIR, f"{name}.{SCALE.name}.csv")
    with open(csv_path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        writer.writerows(rows)
