"""Ablations of FW-KV's design choices (DESIGN.md Section 5).

Four studies:

* **visible reads off** -- quantifies what the VAS machinery costs
  (FW-KV minus consistency guard vs full FW-KV);
* **fresh update reads off** -- isolates the Figure 4 abort savings: with
  update transactions pinned to their begin snapshot, FW-KV's abort rate
  under delayed propagation climbs back toward Walter's;
* **remove scope** -- broadcast (bounded) vs paper-literal (contacted
  nodes only) vs off: VAS entries accumulate when cleanup misses nodes;
* **propagate delay sweep** -- Walter-vs-FW-KV abort gap as a function of
  the injected congestion delay.
"""

import dataclasses

from repro.config import ClusterConfig, NetworkConfig, RunConfig
from repro.harness import run_experiment
from repro.workloads import YCSBConfig, YCSBWorkload
from scales import SCALE, emit_table

NODES = 8
KEYS = 20_000
RUN = RunConfig(duration=0.02, warmup=0.006)


def _run(protocol, ro=0.2, delay=0.0, seed=1, **config_kwargs):
    network = NetworkConfig()
    if delay:
        network = network.with_propagate_delay(delay)
    config = ClusterConfig(
        num_nodes=NODES, clients_per_node=5, seed=seed, network=network,
        **config_kwargs,
    )
    workload = YCSBWorkload(YCSBConfig(num_keys=KEYS, read_only_fraction=ro))
    return run_experiment(protocol, workload, config, RUN)


def run_ablation_visible_reads():
    rows = []
    for label, kwargs in (
        ("fwkv", {}),
        ("fwkv-no-vas", {"fwkv_visible_reads": False}),
        ("walter", None),
    ):
        if kwargs is None:
            result = _run("walter", ro=0.5)
        else:
            result = _run("fwkv", ro=0.5, **kwargs)
        rows.append(
            {
                "variant": label,
                "throughput_ktps": result.throughput_ktps,
                "abort_rate": result.abort_rate,
            }
        )
    return rows


def test_ablation_visible_reads(benchmark):
    rows = benchmark.pedantic(run_ablation_visible_reads, rounds=1, iterations=1)
    emit_table(
        "ablation_visible_reads", rows, ["variant", "throughput_ktps", "abort_rate"],
        title="Ablation: cost of the visible-reads (VAS) machinery, 50% RO",
    )
    by_variant = {row["variant"]: row["throughput_ktps"] for row in rows}
    # Removing the VAS machinery recovers throughput toward Walter's.
    assert by_variant["fwkv-no-vas"] >= by_variant["fwkv"] * 0.98
    assert by_variant["walter"] >= by_variant["fwkv"] * 0.98


def run_ablation_fresh_update_reads():
    rows = []
    for label, kwargs in (
        ("fwkv", {}),
        ("fwkv-stale-updates", {"fwkv_fresh_update_reads": False}),
        ("walter", None),
    ):
        if kwargs is None:
            result = _run("walter", ro=0.2, delay=1e-3)
        else:
            result = _run("fwkv", ro=0.2, delay=1e-3, **kwargs)
        rows.append({"variant": label, "abort_rate": result.abort_rate})
    return rows


def test_ablation_fresh_update_reads(benchmark):
    rows = benchmark.pedantic(
        run_ablation_fresh_update_reads, rounds=1, iterations=1
    )
    emit_table(
        "ablation_fresh_update_reads", rows, ["variant", "abort_rate"],
        title="Ablation: fresh first reads for update txns, Propagate +1ms",
    )
    by_variant = {row["variant"]: row["abort_rate"] for row in rows}
    # Fresh update reads are what keeps FW-KV's abort rate low; removing
    # them pushes it toward (or past) Walter's.
    assert by_variant["fwkv-stale-updates"] > by_variant["fwkv"]
    assert by_variant["walter"] > by_variant["fwkv"]


def run_ablation_remove_scope():
    rows = []
    for label, kwargs in (
        ("broadcast", {"remove_broadcast": True}),
        ("contacted-only", {"remove_broadcast": False}),
        ("off", {"removes_enabled": False}),
    ):
        result = _run("fwkv", ro=0.5, **kwargs)
        rows.append(
            {
                "variant": label,
                "residual_vas": result.cluster.total_vas_entries(),
                "mean_antidep": result.mean_antidep,
                "throughput_ktps": result.throughput_ktps,
            }
        )
    return rows


def test_ablation_remove_scope(benchmark):
    rows = benchmark.pedantic(run_ablation_remove_scope, rounds=1, iterations=1)
    emit_table(
        "ablation_remove_scope", rows, ["variant", "residual_vas", "mean_antidep", "throughput_ktps"],
        title="Ablation: Remove scope vs VAS accumulation (50% RO)",
    )
    by_variant = {row["variant"]: row for row in rows}
    # Cleanup scope orders residual VAS occupancy.
    assert (
        by_variant["off"]["residual_vas"]
        > by_variant["contacted-only"]["residual_vas"]
        >= 0
    )
    assert (
        by_variant["off"]["residual_vas"]
        > by_variant["broadcast"]["residual_vas"]
    )


def run_ablation_delay_sweep():
    rows = []
    for delay_us in (0, 250, 500, 1000, 2000):
        for protocol in ("fwkv", "walter"):
            result = _run(protocol, ro=0.2, delay=delay_us * 1e-6)
            rows.append(
                {
                    "delay_us": delay_us,
                    "protocol": protocol,
                    "abort_rate": result.abort_rate,
                    "throughput_ktps": result.throughput_ktps,
                }
            )
    return rows


def test_ablation_delay_sweep(benchmark):
    rows = benchmark.pedantic(run_ablation_delay_sweep, rounds=1, iterations=1)
    emit_table(
        "ablation_delay_sweep", rows, ["delay_us", "protocol", "abort_rate", "throughput_ktps"],
        title="Ablation: abort rate vs injected Propagate delay (20% RO)",
    )
    walter = {row["delay_us"]: row["abort_rate"] for row in rows
              if row["protocol"] == "walter"}
    fwkv = {row["delay_us"]: row["abort_rate"] for row in rows
            if row["protocol"] == "fwkv"}
    # Walter degrades faster than FW-KV as the delay grows.
    assert walter[2000] > walter[0]
    assert walter[2000] > fwkv[2000]
