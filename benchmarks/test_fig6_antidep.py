"""Figure 6: anti-dependencies collected by FW-KV update transactions.

Paper claims reproduced here: the collected version-access-set size grows
as the update fraction grows and as the key space shrinks (contention),
and it vanishes at large key counts ("gradually decreases to zero, as
with 500k").
"""

from repro.harness.experiments import figure6_antidep
from scales import SCALE, emit_table

COLUMNS = ["figure", "keys", "ro", "mean_antidep", "max_antidep", "samples"]


def run_figure6():
    return figure6_antidep(**SCALE.fig6)


def test_fig6_antidep(benchmark):
    rows = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    emit_table(
        "fig6_antidep", rows, COLUMNS,
        title="Figure 6: anti-dependencies collected at prepare (FW-KV)",
    )

    by_point = {(row["keys"], row["ro"]): row["mean_antidep"] for row in rows}
    key_counts = sorted({row["keys"] for row in rows})
    ro_fracs = sorted({row["ro"] for row in rows})
    smallest = key_counts[0]

    # Contention ordering (the paper's headline trend): the smallest key
    # space collects the most, "gradually decreasing to zero" at the
    # largest.
    for ro in ro_fracs:
        assert by_point[(smallest, ro)] >= by_point[(key_counts[-1], ro)], (
            f"anti-dependency size must shrink with the key space (ro={ro})"
        )
    assert by_point[(key_counts[-1], ro_fracs[0])] < 0.5, (
        "at the largest key space the collected sets are effectively empty"
    )

    # Anti-dependencies do occur under contention.
    assert max(by_point[(smallest, ro)] for ro in ro_fracs) > 0

    # NOTE on the update-fraction trend: the paper reports *larger*
    # collected sets at higher update fractions, a consequence of
    # identifiers propagated to never-contacted nodes accumulating
    # transitively over its multi-second runs (see EXPERIMENTS.md).  Our
    # short, leak-bounded runs measure the first-order effect instead
    # (sets track the read-only registration rate); the accumulation
    # mechanism itself is demonstrated by the ablation benchmark.
