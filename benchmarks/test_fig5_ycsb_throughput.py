"""Figure 5: YCSB throughput vs number of nodes.

Paper claims reproduced here: FW-KV matches Walter at low contention
(within 5%); the gap stays bounded as contention rises (paper: <=20%);
both PSI systems beat the serializable 2PC-baseline at every point.
"""

from collections import defaultdict

from repro.harness.experiments import figure5_ycsb_throughput
from scales import SCALE, emit_table

COLUMNS = ["figure", "ro", "keys", "nodes", "protocol", "throughput_ktps", "abort_rate"]


def run_figure5():
    return figure5_ycsb_throughput(**SCALE.fig5)


def test_fig5_ycsb_throughput(benchmark):
    rows = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    emit_table(
        "fig5_ycsb_throughput", rows, COLUMNS,
        title="Figure 5: YCSB throughput (KTxs/s)",
    )

    by_point = defaultdict(dict)
    for row in rows:
        by_point[(row["ro"], row["keys"], row["nodes"])][row["protocol"]] = row

    for point, protocols in by_point.items():
        fwkv = protocols["fwkv"]["throughput_ktps"]
        walter = protocols["walter"]["throughput_ktps"]
        twopc = protocols["2pc"]["throughput_ktps"]
        # Both PSI protocols must beat the serializable baseline.
        assert fwkv > twopc, f"FW-KV must beat 2PC at {point}"
        assert walter > twopc, f"Walter must beat 2PC at {point}"
        # FW-KV's freshness overhead is bounded (paper: <=20% worst case
        # on YCSB; <=5% at low contention).
        assert fwkv >= 0.7 * walter, f"FW-KV gap too large at {point}"

    # Low-contention check: at the largest key count and fewest nodes the
    # two PSI systems are within 5%, the paper's headline claim.
    low_keys = max(SCALE.fig5.get("key_counts", (500_000,)))
    low_nodes = min(SCALE.fig5.get("nodes", (5,)))
    for ro in (0.2, 0.5):
        protocols = by_point[(ro, low_keys, low_nodes)]
        fwkv = protocols["fwkv"]["throughput_ktps"]
        walter = protocols["walter"]["throughput_ktps"]
        assert fwkv >= 0.95 * walter, (
            f"low-contention gap must be <5% (ro={ro}): {fwkv} vs {walter}"
        )

    # Throughput must grow with the number of nodes (scalability).
    for ro in (0.2, 0.5):
        for keys in SCALE.fig5.get("key_counts", (50_000, 500_000)):
            series = sorted(
                (n, p) for (r, k, n), prot in by_point.items()
                for p in [prot["fwkv"]["throughput_ktps"]]
                if r == ro and k == keys
            )
            assert series[-1][1] > series[0][1], (
                f"FW-KV must scale with nodes (ro={ro}, keys={keys})"
            )
