"""Figure 7: YCSB abort rate when Propagate messages are delayed by 1 ms.

Paper claims reproduced here: with delayed propagation, Walter's abort
rate is a multiple of FW-KV's (paper: on average about 2x on YCSB),
because Walter's update transactions read stale snapshots and fail
validation until the Propagate arrives, while FW-KV's first read is
always fresh.
"""

from repro.harness.experiments import figure7_ycsb_abort_delay
from scales import SCALE, emit_table

COLUMNS = ["figure", "keys", "ro", "delayed", "protocol", "abort_rate", "throughput_ktps"]


def run_figure7():
    return figure7_ycsb_abort_delay(**SCALE.fig7)


def test_fig7_abort_rate_under_delay(benchmark):
    rows = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    emit_table(
        "fig7_ycsb_abort_delay", rows, COLUMNS,
        title="Figure 7: YCSB abort rate, Propagate delayed 1 ms",
    )

    by_point = {}
    for row in rows:
        by_point.setdefault((row["keys"], row["ro"]), {})[row["protocol"]] = row

    walter_worse = 0
    ratios = []
    for point, protocols in by_point.items():
        walter = protocols["walter"]["abort_rate"]
        fwkv = protocols["fwkv"]["abort_rate"]
        if walter > fwkv:
            walter_worse += 1
        if fwkv > 0:
            ratios.append(walter / fwkv)

    # Walter must abort more than FW-KV at every configuration.
    assert walter_worse == len(by_point), (
        f"Walter must abort more under delayed propagation "
        f"({walter_worse}/{len(by_point)} points)"
    )
    # And by a solid multiple on average (paper: ~2x).
    if ratios:
        mean_ratio = sum(ratios) / len(ratios)
        assert mean_ratio >= 1.5, f"expected Walter/FW-KV abort ratio >=1.5, got {mean_ratio:.2f}"
