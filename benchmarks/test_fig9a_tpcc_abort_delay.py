"""Figure 9a: TPC-C abort rate with Propagate delayed by 1 ms.

Paper claims reproduced here: Walter's abort rate is a clear multiple of
FW-KV's (paper: ~4x on TPC-C), because the warehouse -- the first key
every profile touches -- is read fresh by FW-KV, so objects updated along
with it validate successfully.
"""

from repro.harness.experiments import figure9a_tpcc_abort_delay
from scales import SCALE, emit_table

COLUMNS = ["figure", "w_per_node", "protocol", "abort_rate", "throughput_ktps"]


def run_figure9a():
    return figure9a_tpcc_abort_delay(**SCALE.fig9a)


def test_fig9a_abort_rate_under_delay(benchmark):
    rows = benchmark.pedantic(run_figure9a, rounds=1, iterations=1)
    emit_table(
        "fig9a_tpcc_abort_delay", rows, COLUMNS,
        title="Figure 9a: TPC-C abort rate, Propagate delayed 1 ms",
    )

    by_wpn = {}
    for row in rows:
        by_wpn.setdefault(row["w_per_node"], {})[row["protocol"]] = row

    for wpn, protocols in by_wpn.items():
        walter = protocols["walter"]["abort_rate"]
        fwkv = protocols["fwkv"]["abort_rate"]
        assert walter > fwkv, (
            f"Walter must abort more than FW-KV at {wpn} warehouses/node "
            f"({walter:.4f} vs {fwkv:.4f})"
        )

    ratios = [
        protocols["walter"]["abort_rate"] / protocols["fwkv"]["abort_rate"]
        for protocols in by_wpn.values()
        if protocols["fwkv"]["abort_rate"] > 0
    ]
    if ratios:
        assert max(ratios) >= 1.5, f"expected a solid abort-rate multiple, got {ratios}"
