"""Figure 8: TPC-C throughput vs number of nodes.

Paper claims reproduced here: both PSI systems clearly beat the
2PC-baseline; FW-KV tracks Walter (within 5% at 50% read-only, up to 28%
behind at 20%); throughput grows with node count.
"""

from collections import defaultdict

from repro.harness.experiments import figure8_tpcc_throughput
from scales import SCALE, emit_table

COLUMNS = ["figure", "ro", "w_per_node", "nodes", "protocol", "throughput_ktps", "abort_rate"]


def run_figure8():
    return figure8_tpcc_throughput(**SCALE.fig8)


def test_fig8_tpcc_throughput(benchmark):
    rows = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    emit_table(
        "fig8_tpcc_throughput", rows, COLUMNS,
        title="Figure 8: TPC-C throughput (KTxs/s)",
    )

    by_point = defaultdict(dict)
    for row in rows:
        key = (row["ro"], row["w_per_node"], row["nodes"])
        by_point[key][row["protocol"]] = row

    for point, protocols in by_point.items():
        fwkv = protocols["fwkv"]["throughput_ktps"]
        walter = protocols["walter"]["throughput_ktps"]
        twopc = protocols["2pc"]["throughput_ktps"]
        assert fwkv > twopc, f"FW-KV must beat 2PC at {point}"
        assert walter > twopc, f"Walter must beat 2PC at {point}"
        # Paper's worst observed gap is 28% (at 20% read-only).
        assert fwkv >= 0.65 * walter, f"FW-KV gap too large at {point}"

    # PSI speedup over the baseline is substantial on TPC-C.
    speedups = [
        protocols["walter"]["throughput_ktps"] / protocols["2pc"]["throughput_ktps"]
        for protocols in by_point.values()
    ]
    assert sum(speedups) / len(speedups) >= 1.5, (
        f"mean PSI speedup over 2PC too small: {speedups}"
    )

    # Scalability: more nodes means more committed transactions per second.
    ros = sorted({k[0] for k in by_point})
    wpns = sorted({k[1] for k in by_point})
    node_counts = sorted({k[2] for k in by_point})
    if len(node_counts) > 1:
        for ro in ros:
            for wpn in wpns:
                first = by_point[(ro, wpn, node_counts[0])]["fwkv"]["throughput_ktps"]
                last = by_point[(ro, wpn, node_counts[-1])]["fwkv"]["throughput_ktps"]
                assert last > first, f"FW-KV must scale on TPC-C (ro={ro}, w/n={wpn})"
