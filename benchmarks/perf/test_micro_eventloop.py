"""Microbenchmarks for the discrete-event simulator core."""

import pytest

from repro.sim.simulator import Simulator

from perf.microbench import bench, report

pytestmark = pytest.mark.perf


def test_eventloop_micro():
    def run_call_soon_storm(n):
        # The dominant pattern in protocol runs: bursts of same-time
        # callbacks (event dispatch, process wake-ups).
        sim = Simulator()
        noop = lambda: None  # noqa: E731
        for _ in range(n):
            sim.call_soon(noop)
        sim.run()

    def run_timer_ladder(n):
        # Strictly increasing deadlines: the heap-ordered path.
        sim = Simulator()
        noop = lambda: None  # noqa: E731
        for i in range(n):
            sim.call_at(float(i), noop)
        sim.run()

    def run_cancelled_timers(n):
        # Schedule far-future timers and cancel them all, like retried
        # RPC deadlines; the loop must not drag the dead entries along.
        sim = Simulator()
        noop = lambda: None  # noqa: E731
        timers = [sim.call_at(1e9 + i, noop) for i in range(n)]
        for timer in timers:
            timer.cancel()
        sim.call_soon(noop)
        sim.run()

    results = {
        "call_soon storm": bench(run_call_soon_storm),
        "timer ladder": bench(run_timer_ladder),
        "cancel storm": bench(run_cancelled_timers),
    }
    report("eventloop", results)
    assert all(row["ops_per_second"] > 0 for row in results.values())


def test_cancelled_timers_leave_heap():
    """Cancelled entries must be compacted out well before their deadline."""
    sim = Simulator()
    noop = lambda: None  # noqa: E731
    timers = [sim.call_at(1e9 + i, noop) for i in range(1024)]
    for timer in timers:
        timer.cancel()
    # A single live callback triggers lazy compaction bookkeeping.
    sim.call_soon(noop)
    sim.run()
    assert sim.pending_count < 1024
