"""Microbenchmarks for version-chain scans and lookups."""

import pytest

from repro.core.fwkv.visibility import (
    select_read_only_version,
    select_update_version,
)
from repro.core.walter.visibility import select_walter_version
from repro.core.vector_clock import VectorClock
from repro.storage.chain import VersionChain

from perf.microbench import bench, report

pytestmark = pytest.mark.perf

SITES = 10
DEPTH = 64


def _chain():
    """A chain of DEPTH versions, all committed by origin 0 in sequence."""
    chain = VersionChain("k")
    for seq in range(DEPTH):
        vc = VectorClock.zeros(SITES)
        vc[0] = seq
        chain.install(value=seq, vc=vc, origin=0, seq=seq)
    return chain


def test_chain_micro():
    chain = _chain()
    # A transaction that has read everything and sits at the newest seq:
    # selection should take the latest-version fast path.
    fresh_vc = tuple([DEPTH] + [0] * (SITES - 1))
    # A transaction pinned far in the past: selection walks the chain.
    stale_vc = tuple([DEPTH // 2] + [0] * (SITES - 1))
    has_read = tuple([True] + [False] * (SITES - 1))

    def run_select_ro_fresh(n):
        for _ in range(n):
            select_read_only_version(chain, fresh_vc, has_read, txn_id=10**9)

    def run_select_ro_stale(n):
        for _ in range(n):
            select_read_only_version(chain, stale_vc, has_read, txn_id=10**9)

    def run_select_update_fresh(n):
        for _ in range(n):
            select_update_version(chain, fresh_vc, has_read)

    def run_select_walter_stale(n):
        for _ in range(n):
            select_walter_version(chain, stale_vc)

    def run_by_vid(n):
        by_vid = chain.by_vid
        for _ in range(n):
            by_vid(0)
            by_vid(DEPTH // 2)
            by_vid(DEPTH - 1)

    def run_latest(n):
        for _ in range(n):
            chain.latest

    results = {
        "select_ro(fresh)": bench(run_select_ro_fresh),
        "select_ro(stale)": bench(run_select_ro_stale),
        "select_update(fresh)": bench(run_select_update_fresh),
        "select_walter(stale)": bench(run_select_walter_stale),
        "by_vid(x3)": bench(run_by_vid),
        "latest": bench(run_latest),
    }
    report("chain", results)
    assert all(row["ops_per_second"] > 0 for row in results.values())


def test_by_vid_after_gc_semantics():
    """by_vid must stay correct (and O(1)) across garbage collection."""
    chain = _chain()
    dropped = chain.truncate_older_than(keep_last=DEPTH // 4)
    assert dropped == DEPTH - DEPTH // 4
    first_kept = DEPTH - DEPTH // 4
    assert chain.by_vid(first_kept).vid == first_kept
    assert chain.by_vid(DEPTH - 1).vid == DEPTH - 1
    for reclaimed in (0, first_kept - 1):
        with pytest.raises(LookupError):
            chain.by_vid(reclaimed)
    with pytest.raises(LookupError):
        chain.by_vid(DEPTH)
