"""Microbenchmarks for vector-clock algebra (the per-message hot path)."""

import pytest

from repro.core.vector_clock import VectorClock

from perf.microbench import bench, report

pytestmark = pytest.mark.perf

SIZE = 20  # the paper's largest cluster


def _clocks():
    a = VectorClock(range(7, 7 + SIZE))
    b = VectorClock(range(SIZE, 0, -1))
    dominated = VectorClock([0] * SIZE)
    positions = tuple(i % 2 == 0 for i in range(SIZE))
    return a, b, dominated, positions


def test_clock_algebra_micro():
    a, b, dominated, positions = _clocks()

    def run_copy(n):
        copy = a.copy
        for _ in range(n):
            copy()

    def run_merge(n):
        for _ in range(n):
            a.copy().merge(b)

    def run_merge_dominated(n):
        # The dominance-early-exit case: merging a clock we already cover.
        for _ in range(n):
            a.merge(dominated)

    def run_leq(n):
        leq = a.leq
        for _ in range(n):
            leq(b)

    def run_leq_on(n):
        leq_on = a.leq_on
        for _ in range(n):
            leq_on(b, positions)

    def run_zeros(n):
        zeros = VectorClock.zeros
        for _ in range(n):
            zeros(SIZE)

    results = {
        "copy": bench(run_copy),
        "merge(copy+merge)": bench(run_merge),
        "merge(dominated)": bench(run_merge_dominated),
        "leq": bench(run_leq),
        "leq_on": bench(run_leq_on),
        "zeros": bench(run_zeros),
    }
    report("clock", results)
    assert all(row["ops_per_second"] > 0 for row in results.values())
