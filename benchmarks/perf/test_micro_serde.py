"""Microbenchmarks for wire serde: envelope and body construction.

Every read builds a ReadRequestBody carrying ``tuple(T.VC)`` and
``tuple(T.hasRead)``, and every reply a freshness bound -- the serde
work the tuple caches (``VectorClock.to_tuple`` / ``merged_tuple`` /
``Transaction.has_read_tuple``) exist to collapse.  The cached rows here
are the hot path (clock unchanged between reads); the uncached rows are
the pre-cache cost kept for comparison.
"""

import pytest

from repro.core.transaction import Transaction
from repro.core.vector_clock import VectorClock
from repro.core.wire import ReadRequestBody
from repro.net.message import Envelope

from perf.microbench import bench, report

pytestmark = pytest.mark.perf

SIZE = 20  # the paper's largest cluster


def test_wire_serde_micro():
    vc = VectorClock(range(7, 7 + SIZE))
    site_vc = VectorClock(range(SIZE, 0, -1))
    txn = Transaction(1, 0, SIZE, True)
    txn.note_read_site(3)
    vc_tuple = vc.to_tuple()
    has_read = txn.has_read_tuple()

    def run_to_tuple_cached(n):
        to_tuple = vc.to_tuple
        for _ in range(n):
            to_tuple()

    def run_to_tuple_uncached(n):
        entries = vc.entries
        for _ in range(n):
            tuple(entries)

    def run_merged_tuple(n):
        merged_tuple = vc.merged_tuple
        for _ in range(n):
            merged_tuple(site_vc)

    def run_merged_then_tuple(n):
        # The pre-cache freshness-bound shape: merged() allocates a
        # whole intermediate clock just to tuple it.
        merged = vc.merged
        for _ in range(n):
            merged(site_vc).to_tuple()

    def run_has_read_cached(n):
        has_read_tuple = txn.has_read_tuple
        for _ in range(n):
            has_read_tuple()

    def run_has_read_uncached(n):
        flags = txn.has_read
        for _ in range(n):
            tuple(flags)

    def run_read_request_body(n):
        for _ in range(n):
            ReadRequestBody(
                txn_id=1,
                is_read_only=True,
                key="k0",
                vc=vc_tuple,
                has_read=has_read,
            )

    def run_envelope(n):
        body = ReadRequestBody(1, True, "k0", vc_tuple, has_read)
        for i in range(n):
            Envelope("ReadRequest", 0, 1, body, 0.0, 0.0, i)

    results = {
        "vc.to_tuple (cached)": bench(run_to_tuple_cached),
        "tuple(entries) (uncached)": bench(run_to_tuple_uncached),
        "vc.merged_tuple": bench(run_merged_tuple),
        "vc.merged().to_tuple()": bench(run_merged_then_tuple),
        "has_read_tuple (cached)": bench(run_has_read_cached),
        "tuple(has_read) (uncached)": bench(run_has_read_uncached),
        "ReadRequestBody": bench(run_read_request_body),
        "Envelope": bench(run_envelope),
    }
    report("serde", results)
    assert all(row["ops_per_second"] > 0 for row in results.values())
    # The caches must actually win over re-materializing per call.
    assert (
        results["vc.to_tuple (cached)"]["ns_per_op"]
        < results["tuple(entries) (uncached)"]["ns_per_op"]
    )
    assert (
        results["vc.merged_tuple"]["ns_per_op"]
        < results["vc.merged().to_tuple()"]["ns_per_op"]
    )
