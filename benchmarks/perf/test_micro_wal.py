"""Microbenchmarks for the WAL write path (append, sync accounting).

Group commit moves the per-record work from "append + implicit sync" to
"append into the buffer, amortized mark_durable per group"; these
numbers pin the bookkeeping cost of both regimes so the fig5 durable
rows can be decomposed into sync *latency* (simulated) and sync
*bookkeeping* (real CPU, measured here).
"""

import pytest

from repro.storage.wal import PropagateRecord, WriteAheadLog

from perf.microbench import bench, report

pytestmark = pytest.mark.perf


def test_wal_write_path_micro():
    record = PropagateRecord(0, 1)

    def run_append_unbuffered(n):
        wal = WriteAheadLog()
        append = wal.append
        for _ in range(n):
            append(record)

    def run_append_buffered(n):
        wal = WriteAheadLog(buffered=True)
        append = wal.append
        for _ in range(n):
            append(record)

    def run_append_with_hook(n):
        # The group-commit flusher registers on_append; measure the hook
        # dispatch the durable path pays per record.
        wal = WriteAheadLog(buffered=True)
        sink = []
        wal.on_append = sink.append
        append = wal.append
        for _ in range(n):
            append(record)
            sink.clear()

    def run_per_record_sync(n):
        # Naive durability: one mark_durable per appended record.
        wal = WriteAheadLog(buffered=True)
        append = wal.append
        mark = wal.mark_durable
        for _ in range(n):
            mark(append(record))

    def run_group_sync_32(n):
        # Group commit at batch 32: one mark_durable per 32 appends.
        wal = WriteAheadLog(buffered=True)
        append = wal.append
        mark = wal.mark_durable
        for _ in range(n):
            lsn = append(record)
            if lsn & 31 == 0:
                mark(lsn)

    def run_freeze_unfreeze(n):
        wal = WriteAheadLog(buffered=True)
        for _ in range(n):
            wal.append(record)
            wal.freeze()
            wal.unfreeze()

    results = {
        "append(unbuffered)": bench(run_append_unbuffered),
        "append(buffered)": bench(run_append_buffered),
        "append(+on_append hook)": bench(run_append_with_hook),
        "append+sync per record": bench(run_per_record_sync),
        "append+sync per 32": bench(run_group_sync_32),
        "append+freeze+unfreeze": bench(run_freeze_unfreeze),
    }
    report("wal", results)
    assert all(row["ops_per_second"] > 0 for row in results.values())
