"""Tiny timing helpers for the perf microbenchmarks.

Deliberately dependency-free: a benchmark is a closure run in a calibrated
loop, reported as nanoseconds per operation and operations per second.
Results are printed and appended to ``benchmarks/results/MICRO_<suite>.json``
so CI can upload them as an artifact next to the ``BENCH_*.json`` trajectory.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "results"
)


def bench(fn: Callable[[int], None], *, min_time: float = 0.2) -> Dict[str, float]:
    """Time ``fn(n)`` (which must run its workload ``n`` times).

    The loop count is grown geometrically until one timed batch exceeds
    ``min_time`` wall seconds, then the best of three batches is reported
    (best-of-N damps scheduler noise without hiding real regressions).
    """
    n = 64
    while True:
        started = time.perf_counter()
        fn(n)
        elapsed = time.perf_counter() - started
        if elapsed >= min_time or n >= 1 << 24:
            break
        n *= 4
    best = elapsed
    for _ in range(2):
        started = time.perf_counter()
        fn(n)
        best = min(best, time.perf_counter() - started)
    per_op = best / n
    return {
        "iterations": n,
        "ns_per_op": per_op * 1e9,
        "ops_per_second": 1.0 / per_op if per_op > 0 else float("inf"),
    }


def report(suite: str, results: Dict[str, Dict[str, float]]) -> None:
    """Print a suite's results and persist them as JSON."""
    width = max(len(name) for name in results)
    print()
    print(f"[{suite}]")
    for name, row in results.items():
        print(
            f"  {name:<{width}}  {row['ns_per_op']:>12.1f} ns/op"
            f"  {row['ops_per_second']:>14.0f} ops/s"
        )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"MICRO_{suite}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"suite": suite, "results": results}, fh, indent=2)
        fh.write("\n")
