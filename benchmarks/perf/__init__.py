"""Microbenchmarks for the simulator and PSI hot paths (marker: perf)."""
